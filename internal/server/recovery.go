package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// The startup recovery scan. A daemon that died uncleanly — SIGKILL, OOM
// kill, power loss — can leave the data dir holding stale *.tmp files (a
// write interrupted before its rename) and, on filesystems without the
// atomic-rename guarantees we fsync for, torn or corrupt files. The scan's
// contract is that damage NEVER keeps the daemon down: every damaged file
// is quarantined — renamed into <data>/quarantine/ with a logged reason —
// and the object it belonged to is served fresh (a session restarts from
// zero samples, a cache entry is recomputed on demand). Only
// filesystem-level failures (the data dir itself unreadable) abort startup.
//
// Quarantined files are kept, not deleted: they are the post-mortem
// evidence of whatever corrupted them, and an operator can inspect or
// delete <data>/quarantine/ freely — the daemon never reads it back.

func (srv *Server) quarantineDir() string {
	return filepath.Join(srv.cfg.DataDir, "quarantine")
}

// quarantine moves path into the quarantine directory and logs why. Missing
// files are ignored (the caller often quarantines a pair of files of which
// only one exists). The quarantined name keeps the original base name,
// suffixed with a sequence number when a previous incident already parked
// one there.
func (srv *Server) quarantine(path, reason string) {
	if _, err := os.Stat(path); err != nil {
		return
	}
	if err := os.MkdirAll(srv.quarantineDir(), 0o755); err != nil {
		srv.cfg.Logf("warning: cannot quarantine %s: %v", path, err)
		return
	}
	base := filepath.Base(path)
	dst := filepath.Join(srv.quarantineDir(), base)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(srv.quarantineDir(), fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(path, dst); err != nil {
		srv.cfg.Logf("warning: cannot quarantine %s: %v", path, err)
		return
	}
	atomic.AddInt64(&srv.quarantined, 1)
	srv.cfg.Logf("quarantined %s -> %s: %s", path, dst, reason)
}

// sweepStaleTmp quarantines *.tmp leftovers in dir — the footprint of a
// write interrupted between the temp-file write and its rename. The
// completed file (if any) next to it is intact by construction, so only the
// tmp file goes.
func (srv *Server) sweepStaleTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // missing dir: nothing was ever written there
	}
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".tmp" {
			continue
		}
		srv.quarantine(filepath.Join(dir, de.Name()),
			"stale temp file from an interrupted write")
	}
}

// recoveryScan runs the full crash-consistency pass before the registries
// rehydrate: sweep interrupted writes out of every state directory, then
// let loadGraphs/loadSessions/cache.rehydrate verify what remains. Called
// from New with a data dir configured.
func (srv *Server) recoveryScan() {
	srv.sweepStaleTmp(srv.graphsDir())
	srv.sweepStaleTmp(srv.sessionsDir())
	srv.sweepStaleTmp(srv.cacheDir())
}
