package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestEndToEndCheckpointRestart is the acceptance scenario for the
// daemon: upload a graph, drive two concurrent sessions, drain mid-run
// (the SIGTERM path — the signal wiring itself is exercised against the
// real binary by scripts/server_smoke.sh), restart on the same data
// directory, confirm the sessions resume with their samples intact, run
// them to convergence, refine one to a tighter epsilon without a sample
// reset, and see a repeated identical query served from the result cache.
func TestEndToEndCheckpointRestart(t *testing.T) {
	dataDir := t.TempDir()

	srvA, err := New(Config{DataDir: dataDir, MaxConcurrentRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())

	name := uploadGraph(t, tsA.URL, "web", testGraphBytes(t))

	// Two concurrent sessions with a target tight enough that the drain
	// lands mid-run. MaxSamples is an escape hatch, far above what the
	// test needs.
	mk := func(seed int) string {
		return createSession(t, tsA.URL, map[string]any{
			"graph": name, "eps": 0.002, "delta": 0.1, "seed": seed,
		})
	}
	s1, s2 := mk(1), mk(2)
	for _, id := range []string{s1, s2} {
		if code, _ := do(t, "POST", tsA.URL+"/sessions/"+id+"/run", nil); code != http.StatusAccepted {
			t.Fatalf("run %s not accepted", id)
		}
	}

	// Wait until both have sampled a meaningful amount (the progress hook
	// keeps the snapshot fresh per epoch), then pull the plug.
	tauAt := func(base, id string) float64 {
		code, status := do(t, "GET", base+"/sessions/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", id, code)
		}
		return status["snapshot"].(map[string]any)["tau"].(float64)
	}
	deadline := time.Now().Add(30 * time.Second)
	for tauAt(tsA.URL, s1) < 500 || tauAt(tsA.URL, s2) < 500 {
		if time.Now().After(deadline) {
			t.Fatal("sessions never accumulated samples")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srvA.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	drained1, drained2 := tauAt(tsA.URL, s1), tauAt(tsA.URL, s2)
	if drained1 == 0 || drained2 == 0 {
		t.Fatalf("drained sessions report zero samples: %v, %v", drained1, drained2)
	}
	for _, id := range []string{s1, s2} {
		if _, err := os.Stat(filepath.Join(dataDir, "sessions", id+".bck")); err != nil {
			t.Fatalf("no checkpoint for %s after drain: %v", id, err)
		}
	}
	tsA.Close()

	// Restart on the same data directory.
	srvB, err := New(Config{DataDir: dataDir, MaxConcurrentRuns: 2})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	if code, _ := do(t, "GET", tsB.URL+"/graphs/"+name, nil); code != http.StatusOK {
		t.Fatalf("graph %s not rehydrated", name)
	}

	// The restored sessions hold their checkpointed samples before any new
	// run — that is the "resumes instead of resampling" contract. The seq
	// backend restores bit-identically, so tau matches exactly.
	if got := tauAt(tsB.URL, s1); got != drained1 {
		t.Fatalf("session %s restored tau = %v, want %v", s1, got, drained1)
	}
	if got := tauAt(tsB.URL, s2); got != drained2 {
		t.Fatalf("session %s restored tau = %v, want %v", s2, got, drained2)
	}

	// Resume both to convergence.
	for _, id := range []string{s1, s2} {
		if code, _ := do(t, "POST", tsB.URL+"/sessions/"+id+"/run", nil); code != http.StatusAccepted {
			t.Fatalf("resume %s not accepted", id)
		}
	}
	for _, id := range []string{s1, s2} {
		if status := waitIdle(t, tsB.URL, id); status["converged"] != true {
			t.Fatalf("resumed session %s did not converge: %v", id, status)
		}
	}
	converged1 := tauAt(tsB.URL, s1)
	if converged1 <= drained1 {
		t.Fatalf("resumed run did not extend samples: %v -> %v", drained1, converged1)
	}

	// Refine tightens the target while keeping every accumulated sample.
	body, _ := json.Marshal(map[string]any{"eps": 0.0015})
	if code, resp := do(t, "POST", tsB.URL+"/sessions/"+s1+"/refine", body); code != http.StatusAccepted {
		t.Fatalf("refine: status %d, resp %v", code, resp)
	}
	status := waitIdle(t, tsB.URL, s1)
	if status["converged"] != true {
		t.Fatalf("refine did not converge: %v", status)
	}
	if status["eps"].(float64) != 0.0015 {
		t.Fatalf("refined eps = %v, want 0.0015", status["eps"])
	}
	refined1 := status["snapshot"].(map[string]any)["tau"].(float64)
	if refined1 <= converged1 {
		t.Fatalf("refine reset samples: tau %v -> %v", converged1, refined1)
	}

	// Repeated identical query: first fresh session fills the cache, the
	// second is served from it.
	params := map[string]any{"graph": name, "eps": 0.1, "delta": 0.1, "seed": 42}
	warm := createSession(t, tsB.URL, params)
	do(t, "POST", tsB.URL+"/sessions/"+warm+"/run", nil)
	if status := waitIdle(t, tsB.URL, warm); status["cached"] == true {
		t.Fatalf("first query unexpectedly cached")
	}
	repeat := createSession(t, tsB.URL, params)
	do(t, "POST", tsB.URL+"/sessions/"+repeat+"/run", nil)
	if status := waitIdle(t, tsB.URL, repeat); status["cached"] != true {
		t.Fatalf("repeated identical query not served from cache: %v", status)
	}
}

// TestRestartWithoutCheckpoint covers the degraded path: a session that
// never sampled is rehydrated fresh (same identity, zero samples) rather
// than lost.
func TestRestartWithoutCheckpoint(t *testing.T) {
	dataDir := t.TempDir()
	srvA, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	name := uploadGraph(t, tsA.URL, "g", testGraphBytes(t))
	id := createSession(t, tsA.URL, map[string]any{"graph": name, "eps": 0.1})
	if err := srvA.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	tsA.Close()

	srvB, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	code, status := do(t, "GET", tsB.URL+"/sessions/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("session not rehydrated: status %d", code)
	}
	if tau := status["snapshot"].(map[string]any)["tau"].(float64); tau != 0 {
		t.Fatalf("fresh rehydrated session has tau %v", tau)
	}
	if code, _ := do(t, "POST", tsB.URL+"/sessions/"+id+"/run", nil); code != http.StatusAccepted {
		t.Fatal("run on rehydrated session not accepted")
	}
	if status := waitIdle(t, tsB.URL, id); status["converged"] != true {
		t.Fatalf("rehydrated session did not converge: %v", status)
	}
}
