// Package server implements betweennessd, the betweenness-as-a-service
// daemon: an HTTP/JSON front end over the resumable estimation sessions of
// repro/betweenness.
//
// The service owns two kinds of named objects. Graphs are uploaded once
// (format sniffed via graph.DetectFormat, reduced to the largest
// (strongly) connected component, content-addressed by CSR digest) and
// shared immutably across sessions, with reference counting so a graph
// cannot be deleted under a live session. Sessions wrap a
// betweenness.Estimator: POST /sessions/{id}/run and /refine execute
// asynchronously — serialized per session, admitted through a bounded
// worker pool — while GET /sessions/{id} returns a live Snapshot (eps',
// tau, samples/s) at any time and GET /sessions/{id}/events streams
// per-epoch progress over SSE.
//
// Production concerns are first-class, and the durability story holds
// under unclean death, not just SIGTERM:
//
//   - A two-tier LRU result cache keyed by (graph digest, workload, eps,
//     delta, seed, backend) makes repeated identical queries free; with a
//     data dir, converged entries spill to disk (bounded by
//     CacheDiskBytes) and rehydrate on restart.
//   - Every run and refine checkpoints its session synchronously at
//     completion, and a background loop (CheckpointInterval) captures
//     in-flight runs at consistent epoch boundaries — so a SIGKILL or OOM
//     kill loses at most one interval of sampling, and Drain (wired to
//     SIGTERM in cmd/betweennessd) remains the clean path: cancel runs,
//     checkpoint everything, exit.
//   - Startup is crash-consistent: a recovery scan sweeps interrupted
//     writes aside, rehydration CRC-verifies checkpoints and cache
//     entries, and damage is quarantined under <data>/quarantine/ (the
//     session restarts fresh) instead of keeping the daemon down.
//   - Runs are watchdogged (RunTimeout) — expiry interrupts the run and
//     keeps the session resumable — and distributed-backend runs that die
//     of rank death retry with exponential backoff on a shrunken world,
//     then degrade to the shared-memory backend, with the degradation
//     surfaced in session status rather than a bare 500.
//   - Undirected uploads persist as BCSR v2 and are served by mmap: once
//     the graph file is durable, the registry entry swaps its heap CSR
//     for a mapping of the persisted bytes (graph.OpenMapped), so every
//     session on the graph — in this process lifetime and after any
//     restart — shares the kernel page cache instead of a per-daemon heap
//     copy. BCSR v2 bodies are also accepted directly on upload, which is
//     how graphconv output reaches the daemon without a text round trip.
package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/betweenness"
)

// Config configures a Server.
type Config struct {
	// DataDir is the persistence root (graphs, session metadata,
	// checkpoints, the cache's disk tier, quarantined files). Empty runs
	// the server fully in memory: usable, but nothing survives a restart.
	DataDir string
	// MaxConcurrentRuns bounds the number of estimator runs sampling at
	// once — the admission-control knob. Queued operations wait for a
	// slot. Default 2.
	MaxConcurrentRuns int
	// CacheSize is the result-cache capacity in entries (memory tier).
	// Default 128; negative disables caching entirely.
	CacheSize int
	// CacheDiskBytes bounds the result cache's disk tier under
	// DataDir/cache. Default 256 MiB; negative disables spilling (the
	// cache then lives and dies with the process).
	CacheDiskBytes int64
	// CheckpointInterval is the cadence of the periodic background
	// checkpointer: how much sampling an unclean death (SIGKILL, OOM kill,
	// power loss) can cost a running session. Default 30s; negative
	// disables the loop (completion checkpoints and Drain still write).
	CheckpointInterval time.Duration
	// RunTimeout is the server-side watchdog ceiling on one run or refine.
	// An expired operation is interrupted, not failed: the session keeps
	// its samples and resumes on the next run. 0 disables (default).
	RunTimeout time.Duration
	// MaxUploadBytes bounds one graph upload. Default 1 GiB.
	MaxUploadBytes int64
	// Logf, when set, receives one line per significant server event.
	Logf func(format string, args ...any)
}

// Server is the daemon state: registries, worker pool, cache, and the
// HTTP handler over them. Create with New, serve via Handler, stop via
// Drain.
type Server struct {
	cfg Config

	mu          sync.Mutex
	graphs      map[string]*graphEntry
	sessions    map[string]*session
	nextSession int
	draining    bool

	// runCtx is the ancestor of every session's run context; Drain
	// cancels it to stop all sampling within one epoch.
	runCtx     context.Context
	cancelRuns context.CancelFunc
	// slots is the worker-pool semaphore (capacity MaxConcurrentRuns).
	slots chan struct{}
	// wg tracks in-flight run goroutines (and the checkpoint loop) for
	// Drain.
	wg sync.WaitGroup

	// ready flips true once rehydration finishes; /readyz gates on it (and
	// on draining).
	ready atomic.Bool
	// quarantined counts files set aside by quarantine(), for /stats.
	quarantined int64

	cache *resultCache
	mux   *http.ServeMux
}

// distCheckpointEpochs is the in-run checkpoint cadence of the distributed
// backends, in epochs: their WithDistCheckpoint hook is epoch-denominated
// (rank 0 serializes at collective boundaries), unlike the wall-clock loop
// driving the steppable engines.
const distCheckpointEpochs = 8

// New builds a Server and, when cfg.DataDir holds a previous instance's
// state, rehydrates it: the recovery scan quarantines files torn by an
// unclean death, graphs and sessions reload (checkpointed sessions resume
// their sampling state; a session with a damaged checkpoint is served
// fresh), and the result cache reloads its disk tier.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrentRuns <= 0 {
		cfg.MaxConcurrentRuns = 2
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.CacheDiskBytes == 0 {
		cfg.CacheDiskBytes = 256 << 20
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 30 * time.Second
	}
	if cfg.CheckpointInterval < 0 {
		cfg.CheckpointInterval = 0
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	//bc:ctxok session runs outlive their HTTP requests by design; Drain cancels this root
	runCtx, cancel := context.WithCancel(context.Background())
	srv := &Server{
		cfg:         cfg,
		graphs:      make(map[string]*graphEntry),
		sessions:    make(map[string]*session),
		nextSession: 1,
		runCtx:      runCtx,
		cancelRuns:  cancel,
		slots:       make(chan struct{}, cfg.MaxConcurrentRuns),
	}
	cacheDir := ""
	if cfg.DataDir != "" {
		cacheDir = srv.cacheDir()
	}
	srv.cache = newResultCache(cfg.CacheSize, cacheDir, cfg.CacheDiskBytes, cfg.Logf)
	if cfg.DataDir != "" {
		srv.recoveryScan()
		if err := srv.loadGraphs(); err != nil {
			cancel()
			return nil, fmt.Errorf("server: rehydrating graphs: %w", err)
		}
		if err := srv.loadSessions(); err != nil {
			cancel()
			return nil, fmt.Errorf("server: rehydrating sessions: %w", err)
		}
		srv.cache.rehydrate(srv.quarantine)
		cacheEntries, _, _, diskEntries, _ := srv.cache.stats()
		if n := len(srv.sessions); n > 0 || len(srv.graphs) > 0 || diskEntries > 0 {
			cfg.Logf("rehydrated %d graph(s), %d session(s), %d cached result(s) (%d on disk) from %s",
				len(srv.graphs), n, cacheEntries, diskEntries, cfg.DataDir)
		}
		if q := atomic.LoadInt64(&srv.quarantined); q > 0 {
			cfg.Logf("recovery: quarantined %d damaged file(s) under %s", q, srv.quarantineDir())
		}
	}
	srv.mux = srv.buildMux()
	srv.ready.Store(true)
	if cfg.DataDir != "" && cfg.CheckpointInterval > 0 {
		srv.wg.Add(1)
		go srv.checkpointLoop()
	}
	return srv, nil
}

// Handler returns the HTTP handler serving the daemon API.
func (srv *Server) Handler() http.Handler { return srv.mux }

// Ready reports whether the daemon should receive traffic: rehydration
// finished and no drain is in progress. /readyz serves this.
func (srv *Server) Ready() bool {
	srv.mu.Lock()
	draining := srv.draining
	srv.mu.Unlock()
	return srv.ready.Load() && !draining
}

// checkpointLoop is the periodic background checkpointer: every
// CheckpointInterval it requests an in-run capture from every running
// session. Idle sessions need nothing — every operation checkpoints
// synchronously at completion (checkpointAfterOp), so idle state is
// already durable; the loop's job is bounding what a SIGKILL can take
// from a run in flight.
func (srv *Server) checkpointLoop() {
	defer srv.wg.Done()
	ticker := time.NewTicker(srv.cfg.CheckpointInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			srv.checkpointPass()
		case <-srv.runCtx.Done():
			return
		}
	}
}

// checkpointPass arms one in-run capture per running session. It never
// touches the estimator mutex: RequestCheckpoint is a flag the engine
// services at its next consistent epoch boundary on its own coordinating
// goroutine, and the sink (writeSessionCheckpoint) persists the sealed
// envelope. One-shot backends return false — the distributed ones among
// them checkpoint through their epoch-denominated WithDistCheckpoint hook
// instead, wired in sessionOptions.
func (srv *Server) checkpointPass() {
	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		running := s.state == stateRunning
		s.mu.Unlock()
		if running {
			s.estimator().RequestCheckpoint()
		}
	}
}

// sessionLive reports whether s is still the registered session for its
// id — the guard that keeps a checkpoint racing a DELETE from resurrecting
// the deleted session's files.
func (srv *Server) sessionLive(s *session) bool {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.sessions[s.id] == s
}

// sessionOptions builds the betweenness options for params p on session s,
// including the server-owned extras: the progress hook (always — it keeps
// status and SSE fresh) and, for the distributed backends under a data dir,
// the periodic distributed checkpoint sink.
func (srv *Server) sessionOptions(s *session, p sessionParams) ([]betweenness.Option, error) {
	opts, err := p.options(s.progress)
	if err != nil {
		return nil, err
	}
	if srv.cfg.DataDir != "" && srv.cfg.CheckpointInterval > 0 && p.distBackend() {
		opts = append(opts, betweenness.WithDistCheckpoint(distCheckpointEpochs, func(payload []byte) {
			srv.writeSessionCheckpoint(s, payload)
		}))
	}
	return opts, nil
}

// wireCheckpointSink registers the in-run capture sink on a steppable
// estimator (no-op on one-shot ones, and without a data dir or with the
// loop disabled there is nothing to capture for).
func (srv *Server) wireCheckpointSink(s *session, est *betweenness.Estimator) {
	if srv.cfg.DataDir == "" || srv.cfg.CheckpointInterval <= 0 {
		return
	}
	est.SetCheckpointSink(func(payload []byte) {
		srv.writeSessionCheckpoint(s, payload)
	})
}

// buildSession constructs (or restores, when ckptPath is non-empty) the
// estimator behind a session. Callers register the returned session and
// take the graph reference themselves.
func (srv *Server) buildSession(id string, g *graphEntry, p sessionParams, ckptPath string) (*session, error) {
	s := &session{id: id, srv: srv, g: g, params: p, state: stateIdle}
	s.runCtx, s.cancel = context.WithCancel(srv.runCtx)
	opts, err := srv.sessionOptions(s, p)
	if err != nil {
		return nil, err
	}
	if ckptPath != "" {
		est, err := restoreFromFile(ckptPath, g.workload(), opts)
		if err != nil {
			return nil, err
		}
		s.est = est
		if p.distBackend() {
			// A distributed session's in-run checkpoints are synthesized
			// envelopes that restore onto the sequential engine (the ranks'
			// state is gone with the ranks). Surface the engine change and
			// re-key the session honestly instead of claiming a backend it
			// no longer runs on.
			s.degraded = fmt.Sprintf(
				"restored from a %s-backend checkpoint onto the sequential engine", p.Backend)
			s.params.Backend, s.params.Procs = "seq", 0
		}
		if est.Checkpointable() {
			// The restored tau is exactly what is on disk already.
			s.lastCkptTau = est.Snapshot().Tau
		}
		srv.wireCheckpointSink(s, est)
		return s, nil
	}
	est, err := betweenness.NewEstimator(g.workload(), opts...)
	if err != nil {
		return nil, err
	}
	s.est = est
	srv.wireCheckpointSink(s, est)
	return s, nil
}

// Drain performs the graceful-shutdown sequence: refuse new operations
// (readiness drops with it), cancel every in-flight run (the estimators
// keep their accumulated samples — that is the session contract), wait for
// the run goroutines, then checkpoint every resumable session so a
// restarted daemon resumes instead of resampling. It returns the first
// checkpointing error but keeps going so one bad session cannot sink the
// others' state; ctx bounds the wait for in-flight runs.
func (srv *Server) Drain(ctx context.Context) error {
	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		return nil
	}
	srv.draining = true
	srv.mu.Unlock()
	srv.cfg.Logf("draining: cancelling in-flight runs")
	srv.cancelRuns()

	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted waiting for runs: %w", ctx.Err())
	}

	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()

	var firstErr error
	saved := 0
	for _, s := range sessions {
		hasCkpt, err := srv.checkpointSession(s)
		if err == nil {
			err = srv.persistSessionMeta(s, hasCkpt)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: checkpointing session %s: %w", s.id, err)
		}
		if hasCkpt {
			saved++
		}
	}
	srv.cfg.Logf("drained: %d/%d session(s) checkpointed", saved, len(sessions))
	return firstErr
}

// restoreFromFile opens a checkpoint and rebinds it to the workload.
func restoreFromFile(path string, w betweenness.Workload, opts []betweenness.Option) (*betweenness.Estimator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return betweenness.RestoreEstimator(f, w, opts...)
}

// allocSessionID reserves the next generated session id. Callers hold
// srv.mu.
func (srv *Server) allocSessionIDLocked() string {
	id := fmt.Sprintf("s%d", srv.nextSession)
	srv.nextSession++
	return id
}
