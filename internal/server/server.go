// Package server implements betweennessd, the betweenness-as-a-service
// daemon: an HTTP/JSON front end over the resumable estimation sessions of
// repro/betweenness.
//
// The service owns two kinds of named objects. Graphs are uploaded once
// (format sniffed via graph.DetectFormat, reduced to the largest
// (strongly) connected component, content-addressed by CSR digest) and
// shared immutably across sessions, with reference counting so a graph
// cannot be deleted under a live session. Sessions wrap a
// betweenness.Estimator: POST /sessions/{id}/run and /refine execute
// asynchronously — serialized per session, admitted through a bounded
// worker pool — while GET /sessions/{id} returns a live Snapshot (eps',
// tau, samples/s) at any time and GET /sessions/{id}/events streams
// per-epoch progress over SSE.
//
// Production concerns are first-class: an LRU result cache keyed by
// (graph digest, workload, eps, delta, seed, backend) makes repeated
// identical queries free; Drain — wired to SIGTERM in cmd/betweennessd —
// cancels in-flight runs (the estimator keeps their samples), checkpoints
// every resumable session through the versioned BCSE format, and a
// restarted daemon rehydrates graphs and sessions from the data directory,
// resuming exactly where it stopped.
package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"

	"repro/betweenness"
)

// Config configures a Server.
type Config struct {
	// DataDir is the persistence root (graphs, session metadata,
	// checkpoints). Empty runs the server fully in memory: usable, but
	// Drain cannot checkpoint and a restart starts empty.
	DataDir string
	// MaxConcurrentRuns bounds the number of estimator runs sampling at
	// once — the admission-control knob. Queued operations wait for a
	// slot. Default 2.
	MaxConcurrentRuns int
	// CacheSize is the result-cache capacity in entries. Default 128;
	// negative disables caching.
	CacheSize int
	// MaxUploadBytes bounds one graph upload. Default 1 GiB.
	MaxUploadBytes int64
	// Logf, when set, receives one line per significant server event.
	Logf func(format string, args ...any)
}

// Server is the daemon state: registries, worker pool, cache, and the
// HTTP handler over them. Create with New, serve via Handler, stop via
// Drain.
type Server struct {
	cfg Config

	mu          sync.Mutex
	graphs      map[string]*graphEntry
	sessions    map[string]*session
	nextSession int
	draining    bool

	// runCtx is the ancestor of every session's run context; Drain
	// cancels it to stop all sampling within one epoch.
	runCtx     context.Context
	cancelRuns context.CancelFunc
	// slots is the worker-pool semaphore (capacity MaxConcurrentRuns).
	slots chan struct{}
	// wg tracks in-flight run goroutines for Drain.
	wg sync.WaitGroup

	cache *resultCache
	mux   *http.ServeMux
}

// New builds a Server and, when cfg.DataDir holds a previous instance's
// state, rehydrates its graphs and sessions (checkpointed sessions resume
// their exact sampling state).
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrentRuns <= 0 {
		cfg.MaxConcurrentRuns = 2
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	//bc:ctxok session runs outlive their HTTP requests by design; Drain cancels this root
	runCtx, cancel := context.WithCancel(context.Background())
	srv := &Server{
		cfg:         cfg,
		graphs:      make(map[string]*graphEntry),
		sessions:    make(map[string]*session),
		nextSession: 1,
		runCtx:      runCtx,
		cancelRuns:  cancel,
		slots:       make(chan struct{}, cfg.MaxConcurrentRuns),
		cache:       newResultCache(cfg.CacheSize),
	}
	if cfg.DataDir != "" {
		if err := srv.loadGraphs(); err != nil {
			cancel()
			return nil, fmt.Errorf("server: rehydrating graphs: %w", err)
		}
		if err := srv.loadSessions(); err != nil {
			cancel()
			return nil, fmt.Errorf("server: rehydrating sessions: %w", err)
		}
		if n := len(srv.sessions); n > 0 || len(srv.graphs) > 0 {
			cfg.Logf("rehydrated %d graph(s), %d session(s) from %s", len(srv.graphs), n, cfg.DataDir)
		}
	}
	srv.mux = srv.buildMux()
	return srv, nil
}

// Handler returns the HTTP handler serving the daemon API.
func (srv *Server) Handler() http.Handler { return srv.mux }

// buildSession constructs (or restores, when ckptPath is non-empty) the
// estimator behind a session. Callers register the returned session and
// take the graph reference themselves.
func (srv *Server) buildSession(id string, g *graphEntry, p sessionParams, ckptPath string) (*session, error) {
	s := &session{id: id, srv: srv, g: g, params: p, state: stateIdle}
	s.runCtx, s.cancel = context.WithCancel(srv.runCtx)
	opts, err := p.options(s.progress)
	if err != nil {
		return nil, err
	}
	if ckptPath != "" {
		est, err := restoreFromFile(ckptPath, g.workload(), opts)
		if err != nil {
			return nil, err
		}
		s.est = est
		return s, nil
	}
	est, err := betweenness.NewEstimator(g.workload(), opts...)
	if err != nil {
		return nil, err
	}
	s.est = est
	return s, nil
}

// Drain performs the graceful-shutdown sequence: refuse new operations,
// cancel every in-flight run (the estimators keep their accumulated
// samples — that is the session contract), wait for the run goroutines,
// then checkpoint every resumable session so a restarted daemon resumes
// instead of resampling. It returns the first checkpointing error but
// keeps going so one bad session cannot sink the others' state; ctx bounds
// the wait for in-flight runs.
func (srv *Server) Drain(ctx context.Context) error {
	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		return nil
	}
	srv.draining = true
	srv.mu.Unlock()
	srv.cfg.Logf("draining: cancelling in-flight runs")
	srv.cancelRuns()

	done := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted waiting for runs: %w", ctx.Err())
	}

	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()

	var firstErr error
	saved := 0
	for _, s := range sessions {
		hasCkpt, err := srv.checkpointSession(s)
		if err == nil {
			err = srv.persistSessionMeta(s, hasCkpt)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: checkpointing session %s: %w", s.id, err)
		}
		if hasCkpt {
			saved++
		}
	}
	srv.cfg.Logf("drained: %d/%d session(s) checkpointed", saved, len(sessions))
	return firstErr
}

// restoreFromFile opens a checkpoint and rebinds it to the workload.
func restoreFromFile(path string, w betweenness.Workload, opts []betweenness.Option) (*betweenness.Estimator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return betweenness.RestoreEstimator(f, w, opts...)
}

// allocSessionID reserves the next generated session id. Callers hold
// srv.mu.
func (srv *Server) allocSessionIDLocked() string {
	id := fmt.Sprintf("s%d", srv.nextSession)
	srv.nextSession++
	return id
}
