package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/betweenness"
)

// The HTTP surface. All responses are JSON except the SSE stream; errors
// are {"error": "..."} with a meaningful status code (400 bad input, 404
// unknown object, 409 state conflicts — busy sessions, referenced graphs,
// non-refinable backends — and 503 while draining).

func (srv *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", srv.handleHealth)
	mux.HandleFunc("GET /readyz", srv.handleReady)
	mux.HandleFunc("GET /stats", srv.handleStats)

	mux.HandleFunc("POST /graphs", srv.handleGraphUpload)
	mux.HandleFunc("GET /graphs", srv.handleGraphList)
	mux.HandleFunc("GET /graphs/{name}", srv.handleGraphGet)
	mux.HandleFunc("DELETE /graphs/{name}", srv.handleGraphDelete)

	mux.HandleFunc("POST /sessions", srv.handleSessionCreate)
	mux.HandleFunc("GET /sessions", srv.handleSessionList)
	mux.HandleFunc("GET /sessions/{id}", srv.handleSessionGet)
	mux.HandleFunc("DELETE /sessions/{id}", srv.handleSessionDelete)
	mux.HandleFunc("POST /sessions/{id}/run", srv.handleSessionRun)
	mux.HandleFunc("POST /sessions/{id}/refine", srv.handleSessionRefine)
	mux.HandleFunc("GET /sessions/{id}/result", srv.handleSessionResult)
	mux.HandleFunc("GET /sessions/{id}/estimates", srv.handleSessionEstimates)
	mux.HandleFunc("GET /sessions/{id}/events", srv.handleSessionEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleHealth is liveness: the process is up and serving. Always 200 —
// even while draining — so an orchestrator does not kill a daemon that is
// busy checkpointing its sessions.
func (srv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is readiness: 200 when the daemon should receive traffic,
// 503 while the startup recovery scan is still rehydrating state or once a
// drain has begun — so load balancers stop routing before the drain
// cancels anything.
func (srv *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if !srv.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (srv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	nGraphs, nSessions, draining := len(srv.graphs), len(srv.sessions), srv.draining
	srv.mu.Unlock()
	entries, hits, misses, diskEntries, diskBytes := srv.cache.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"graphs":      nGraphs,
		"sessions":    nSessions,
		"draining":    draining,
		"active_runs": len(srv.slots),
		"run_slots":   cap(srv.slots),
		"cache": map[string]any{
			"entries":      entries,
			"hits":         hits,
			"misses":       misses,
			"disk_entries": diskEntries,
			"disk_bytes":   diskBytes,
		},
		"checkpoint_interval": srv.cfg.CheckpointInterval.String(),
		"quarantined_files":   atomic.LoadInt64(&srv.quarantined),
	})
}

// graphJSON is the wire shape of a registered graph.
func graphJSON(g *graphEntry, refs int) map[string]any {
	return map[string]any{
		"name":    g.name,
		"kind":    kindString(g.kind),
		"digest":  g.digest,
		"nodes":   g.nodes,
		"edges":   g.edges,
		"reduced": g.reduced,
		"refs":    refs,
	}
}

// handleGraphUpload registers a graph: the body is the graph bytes in any
// detectable format (?kind= overrides for headerless arc lists), reduced
// to the largest (strongly) connected component and content-addressed.
// Re-uploading an identical graph under the same name is idempotent (200);
// a name collision with different content is a 409.
func (srv *Server) handleGraphUpload(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	draining := srv.draining
	srv.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	body := http.MaxBytesReader(w, r.Body, srv.cfg.MaxUploadBytes)
	g, err := buildGraphEntry(r.URL.Query().Get("name"), body, r.URL.Query().Get("kind"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	srv.mu.Lock()
	if existing, ok := srv.graphs[g.name]; ok {
		refs := existing.refs
		same := existing.digest == g.digest && existing.kind == g.kind
		srv.mu.Unlock()
		if same {
			writeJSON(w, http.StatusOK, graphJSON(existing, refs))
			return
		}
		writeError(w, http.StatusConflict,
			fmt.Errorf("graph %q already registered with different content (digest %s)", g.name, existing.digest))
		return
	}
	srv.graphs[g.name] = g
	srv.mu.Unlock()

	if err := srv.persistGraph(g); err != nil {
		srv.mu.Lock()
		delete(srv.graphs, g.name)
		canClose := g.refs == 0 // a racing session create may already hold the mapping
		srv.mu.Unlock()
		if canClose {
			g.closeMapping()
		}
		writeError(w, http.StatusInternalServerError, fmt.Errorf("persisting graph: %w", err))
		return
	}
	srv.cfg.Logf("registered graph %q: %s, %d nodes, %d edges", g.name, kindString(g.kind), g.nodes, g.edges)
	writeJSON(w, http.StatusCreated, graphJSON(g, 0))
}

func (srv *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	out := make([]map[string]any, 0, len(srv.graphs))
	for _, g := range srv.graphs {
		out = append(out, graphJSON(g, g.refs))
	}
	srv.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (srv *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	g, ok := srv.graphs[r.PathValue("name")]
	var refs int
	if ok {
		refs = g.refs
	}
	srv.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, graphJSON(g, refs))
}

func (srv *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	srv.mu.Lock()
	g, ok := srv.graphs[name]
	if !ok {
		srv.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", name))
		return
	}
	if g.refs > 0 {
		refs := g.refs
		srv.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Errorf("graph %q is referenced by %d live session(s); delete them first", name, refs))
		return
	}
	delete(srv.graphs, name)
	srv.mu.Unlock()
	srv.dropGraphFiles(name)
	g.closeMapping() // refs == 0 and the registry no longer hands the entry out
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// sessionJSON renders a session's full status, including the current
// snapshot (live mid-run to within one epoch — the progress hook keeps it
// fresh; see Snapshot.Live for the one-shot degradation).
func (srv *Server) sessionJSON(s *session) map[string]any {
	snap := s.estimator().Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]any{
		"id":        s.id,
		"graph":     s.g.name,
		"workload":  kindString(s.g.kind),
		"backend":   s.params.Backend,
		"eps":       s.params.Eps,
		"delta":     s.params.Delta,
		"seed":      s.params.Seed,
		"state":     s.state,
		"converged": s.converged,
		"cached":    s.cached,
		"snapshot":  snapshotJSON(snapWithoutEstimates(snap)),
	}
	if s.params.TopK > 0 {
		out["top_k"] = s.params.TopK
	}
	if s.runErr != "" {
		out["error"] = s.runErr
	}
	if s.interrupted {
		out["interrupted"] = true
		if s.interruptReason != "" {
			out["interrupt_reason"] = s.interruptReason
		}
	}
	if s.degraded != "" {
		out["degraded"] = s.degraded
	}
	return out
}

func snapWithoutEstimates(snap betweenness.Snapshot) betweenness.Snapshot {
	snap.Estimates = nil
	return snap
}

// handleSessionCreate builds a session over a registered graph. The body
// is a sessionParams JSON object; the response echoes the session status.
func (srv *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var p sessionParams
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad session body: %w", err))
		return
	}
	if err := p.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	g, ok := srv.graphs[p.Graph]
	if !ok {
		srv.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown graph %q (upload it first)", p.Graph))
		return
	}
	id := srv.allocSessionIDLocked()
	srv.mu.Unlock()

	// Estimator construction validates options and runs the diameter
	// phase on steppable backends; do it outside srv.mu.
	s, err := srv.buildSession(id, g, p, "")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	srv.mu.Lock()
	srv.sessions[id] = s
	g.refs++
	srv.mu.Unlock()

	if err := srv.persistSessionMeta(s, false); err != nil {
		srv.cfg.Logf("warning: persisting session %s meta: %v", id, err)
	}
	srv.cfg.Logf("created session %s on graph %q (%s, eps=%g)", id, g.name, p.Backend, p.Eps)
	writeJSON(w, http.StatusCreated, srv.sessionJSON(s))
}

func (srv *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	out := make([]map[string]any, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, srv.sessionJSON(s))
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupSession resolves {id} or writes a 404.
func (srv *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	srv.mu.Lock()
	s, ok := srv.sessions[id]
	srv.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return nil, false
	}
	return s, true
}

func (srv *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookupSession(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, srv.sessionJSON(s))
}

func (srv *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	srv.mu.Lock()
	s, ok := srv.sessions[id]
	if ok {
		delete(srv.sessions, id)
		s.g.refs--
	}
	srv.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
		return
	}
	// Cancel a run in flight; the goroutine finishes against its own
	// session object and the files go away regardless.
	s.cancel()
	srv.dropSessionFiles(id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleSessionRun starts an asynchronous Run: 202 on acceptance, 409 when
// an operation is already queued or running, 503 while draining. A cache
// hit completes the session without consuming a worker slot.
func (srv *Server) handleSessionRun(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookupSession(w, r)
	if !ok {
		return
	}
	if err := s.start(opRun, refineSpec{}); err != nil {
		writeError(w, statusForStartError(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": s.id, "state": stateQueued})
}

// refineBody is the JSON body of POST /sessions/{id}/refine: the
// statistical retargets Estimator.Refine accepts.
type refineBody struct {
	Eps         float64 `json:"eps,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	TopK        int     `json:"top_k,omitempty"`
	MaxSamples  int64   `json:"max_samples,omitempty"`
	MaxDuration string  `json:"max_duration,omitempty"`
}

// handleSessionRefine starts an asynchronous Refine toward tighter
// targets, reusing every accumulated sample. One-shot backends yield a
// 409 with the typed ErrNotRefinable text when the refine executes.
func (srv *Server) handleSessionRefine(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookupSession(w, r)
	if !ok {
		return
	}
	var body refineBody
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad refine body: %w", err))
		return
	}
	var opts []betweenness.Option
	if body.Eps > 0 {
		opts = append(opts, betweenness.WithEpsilon(body.Eps))
	}
	if body.Delta > 0 {
		opts = append(opts, betweenness.WithDelta(body.Delta))
	}
	if body.TopK > 0 {
		opts = append(opts, betweenness.WithTopK(body.TopK))
	}
	if body.MaxSamples > 0 {
		opts = append(opts, betweenness.WithMaxSamples(body.MaxSamples))
	}
	if body.MaxDuration != "" {
		d, err := time.ParseDuration(body.MaxDuration)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad max_duration %q", body.MaxDuration))
			return
		}
		opts = append(opts, betweenness.WithMaxDuration(d))
	}
	if len(opts) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("refine body names no targets (eps, delta, top_k, max_samples, max_duration)"))
		return
	}
	// Fail fast on one-shot backends instead of queuing a doomed op.
	if !s.estimator().Checkpointable() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("%w (backend %q)", betweenness.ErrNotRefinable, s.paramsBackend()))
		return
	}
	spec := refineSpec{opts: opts, apply: func(p *sessionParams) {
		if body.Eps > 0 {
			p.Eps = body.Eps
		}
		if body.Delta > 0 {
			p.Delta = body.Delta
		}
		if body.TopK > 0 {
			p.TopK = body.TopK
		}
		if body.MaxSamples > 0 {
			p.MaxSamples = body.MaxSamples
		}
		if body.MaxDuration != "" {
			p.MaxDuration = body.MaxDuration
		}
	}}
	if err := s.start(opRefine, spec); err != nil {
		writeError(w, statusForStartError(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": s.id, "state": stateQueued})
}

func (s *session) paramsBackend() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.params.Backend
}

// parsePage reads the ?offset=&limit= pagination parameters against a
// vector of total elements. Absent parameters select the full vector
// (offset 0, limit = total), keeping the unpaginated responses unchanged;
// paged reports whether the caller asked for a window.
func parsePage(r *http.Request, total int) (offset, limit int, paged bool, err error) {
	limit = total
	if q := r.URL.Query().Get("offset"); q != "" {
		paged = true
		if offset, err = strconv.Atoi(q); err != nil || offset < 0 {
			return 0, 0, false, fmt.Errorf("bad offset %q", q)
		}
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		paged = true
		if limit, err = strconv.Atoi(q); err != nil || limit < 0 {
			return 0, 0, false, fmt.Errorf("bad limit %q", q)
		}
	}
	if offset > total {
		offset = total
	}
	if offset+limit > total {
		limit = total - offset
	}
	return offset, limit, paged, nil
}

// handleSessionResult returns the estimates of the last completed
// operation: top-k (?k=, default 10) always, the per-vertex vector with
// ?estimates=1 — paginated by ?offset=&limit= so a million-vertex result
// does not produce an unbounded response. 409 until a result exists.
func (srv *Server) handleSessionResult(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookupSession(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	res := s.result
	cached := s.cached
	s.mu.Unlock()
	if res == nil || res.Estimates == nil {
		writeError(w, http.StatusConflict, errors.New("no result yet: run the session first"))
		return
	}
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		var err error
		if k, err = strconv.Atoi(q); err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", q))
			return
		}
	}
	if k > len(res.Estimates) {
		k = len(res.Estimates)
	}
	top := make([]map[string]any, 0, k)
	for _, v := range res.TopK(k) {
		top = append(top, map[string]any{"vertex": v, "betweenness": res.Estimates[v]})
	}
	out := map[string]any{
		"backend":         res.Backend,
		"tau":             res.Tau,
		"converged":       res.Converged,
		"achieved_eps":    res.AchievedEps,
		"vertex_diameter": res.VertexDiameter,
		"cached":          cached,
		"top":             top,
	}
	if r.URL.Query().Get("estimates") != "" {
		offset, limit, paged, err := parsePage(r, len(res.Estimates))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		out["estimates"] = res.Estimates[offset : offset+limit]
		if paged {
			out["offset"], out["limit"], out["total"] = offset, limit, len(res.Estimates)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSessionEstimates returns a window of the session's CURRENT
// per-vertex estimates — the live snapshot, not the last completed
// result — paginated by ?offset=&limit= (default: the full vector). This
// is the anytime read: valid under the achieved-eps guarantee at any
// moment, including mid-run.
func (srv *Server) handleSessionEstimates(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookupSession(w, r)
	if !ok {
		return
	}
	snap := s.estimator().Snapshot()
	if snap.Estimates == nil {
		writeError(w, http.StatusConflict, errors.New("no estimates yet: run the session first"))
		return
	}
	offset, limit, _, err := parsePage(r, len(snap.Estimates))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tau":          snap.Tau,
		"achieved_eps": snap.AchievedEps,
		"live":         snap.Live,
		"total":        len(snap.Estimates),
		"offset":       offset,
		"limit":        limit,
		"estimates":    snap.Estimates[offset : offset+limit],
	})
}

// handleSessionEvents streams the session's progress as SSE: one
// "progress" event per epoch from the estimator's Progress hook, plus
// "state", "result", "interrupted", and "error" transitions. The stream
// opens with the current status so a late subscriber is never blind.
func (srv *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookupSession(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancel := s.subscribe()
	defer cancel()

	// Opening status frame.
	status, _ := json.Marshal(srv.sessionJSON(s))
	fmt.Fprintf(w, "event: status\ndata: %s\n\n", status)
	flusher.Flush()

	for {
		select {
		case frame := <-ch:
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-srv.runCtx.Done():
			// Draining: close the stream so clients reconnect after restart.
			return
		}
	}
}

// statusForStartError maps session-start failures to status codes.
func statusForStartError(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusConflict
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
