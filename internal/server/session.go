package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/betweenness"
)

// Session states. A session is a state machine serialized by its own
// mutex: at most one run or refine is queued or executing at a time, which
// is also what the underlying Estimator's contract expects.
const (
	stateIdle    = "idle"    // no operation pending; Run/Refine accepted
	stateQueued  = "queued"  // operation accepted, waiting for a worker slot
	stateRunning = "running" // operation executing
)

// sessionParams is the statistical identity and budget of a session as its
// creator requested it — the JSON body of POST /sessions and the persisted
// session metadata are both this shape.
type sessionParams struct {
	Graph string  `json:"graph"`
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	// Threads is the sampling thread count (shm backend; 0 = one per core).
	Threads int `json:"threads,omitempty"`
	// Backend is seq | shm | dist | alg1 (default seq: resumable and the
	// fastest below the shared-memory epoch overhead on small graphs).
	Backend string `json:"backend,omitempty"`
	// Procs is the in-process rank count of the dist/alg1 backends.
	Procs int `json:"procs,omitempty"`
	TopK  int `json:"top_k,omitempty"`
	// MaxSamples and MaxDuration are per-Run admission budgets.
	MaxSamples  int64  `json:"max_samples,omitempty"`
	MaxDuration string `json:"max_duration,omitempty"`
}

// normalize fills defaults and validates the parts the server owns (the
// statistical ranges are validated again by the betweenness options).
func (p *sessionParams) normalize() error {
	if p.Eps == 0 {
		p.Eps = 0.01
	}
	if p.Delta == 0 {
		p.Delta = 0.1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Backend == "" {
		p.Backend = "seq"
	}
	switch p.Backend {
	case "seq", "shm":
	case "dist", "alg1":
		if p.Procs == 0 {
			p.Procs = 2
		}
		if p.Procs < 1 {
			return fmt.Errorf("procs must be >= 1, got %d", p.Procs)
		}
	default:
		return fmt.Errorf("unknown backend %q (want seq|shm|dist|alg1; tcp worlds cannot live inside the daemon)", p.Backend)
	}
	if p.MaxDuration != "" {
		if _, err := time.ParseDuration(p.MaxDuration); err != nil {
			return fmt.Errorf("bad max_duration: %v", err)
		}
	}
	return nil
}

// executor builds the backend the params name.
func (p sessionParams) executor() betweenness.Executor {
	switch p.Backend {
	case "shm":
		return betweenness.SharedMemory()
	case "dist":
		return betweenness.LocalMPI(p.Procs)
	case "alg1":
		return betweenness.PureMPI(p.Procs)
	default:
		return betweenness.Sequential()
	}
}

// options maps the params onto betweenness options, progress hook
// included. The progress hook is what keeps GET /sessions/{id} fresh to
// within one epoch mid-run and feeds the SSE stream; its per-epoch O(n)
// bound sweep is the cost of a live service.
func (p sessionParams) options(progress func(betweenness.Snapshot)) ([]betweenness.Option, error) {
	opts := []betweenness.Option{
		betweenness.WithEpsilon(p.Eps),
		betweenness.WithDelta(p.Delta),
		betweenness.WithSeed(p.Seed),
		betweenness.WithExecutor(p.executor()),
		betweenness.WithProgress(progress),
	}
	if p.Threads > 0 {
		opts = append(opts, betweenness.WithThreads(p.Threads))
	}
	if p.TopK > 0 {
		opts = append(opts, betweenness.WithTopK(p.TopK))
	}
	if p.MaxSamples > 0 {
		opts = append(opts, betweenness.WithMaxSamples(p.MaxSamples))
	}
	if p.MaxDuration != "" {
		d, err := time.ParseDuration(p.MaxDuration)
		if err != nil {
			return nil, err
		}
		opts = append(opts, betweenness.WithMaxDuration(d))
	}
	return opts, nil
}

// session is one named estimation session: an Estimator plus the service
// state around it — the op state machine, the result of the last completed
// operation, and the SSE subscriber set.
type session struct {
	id  string
	srv *Server
	g   *graphEntry
	est *betweenness.Estimator

	// cancel aborts this session's in-flight operation (DELETE mid-run);
	// runCtx is additionally cancelled server-wide by Drain.
	runCtx context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	params    sessionParams
	state     string
	result    *betweenness.Result
	runErr    string
	cached    bool
	converged bool
	// interrupted reports the last operation was stopped by cancellation
	// (drain or delete) with its samples retained.
	interrupted bool
	subs        map[chan []byte]struct{}
}

// refineSpec carries a validated refine request from the handler to the
// run goroutine.
type refineSpec struct {
	opts []betweenness.Option
	// apply mutates the session params after a successful refine, so the
	// cache key and the persisted metadata track the session's current
	// statistical identity.
	apply func(*sessionParams)
}

type opKind int

const (
	opRun opKind = iota
	opRefine
)

// cacheKey is the full statistical identity of this session's next Run:
// sessions with equal keys produce bit-identical converged results.
// Callers hold s.mu.
func (s *session) cacheKeyLocked() string {
	p := s.params
	var b strings.Builder
	b.WriteString(s.g.digest)
	b.WriteByte('|')
	b.WriteString(kindString(s.g.kind))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(p.Eps, 'x', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(p.Delta, 'x', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(p.Seed, 10))
	b.WriteByte('|')
	b.WriteString(p.Backend)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(p.Threads))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(p.Procs))
	return b.String()
}

// start accepts a run or refine if the session is idle and the server is
// not draining, and hands it to a goroutine. The per-session serialization
// lives here: one queued-or-running operation at a time.
func (s *session) start(kind opKind, spec refineSpec) error {
	s.srv.mu.Lock()
	draining := s.srv.draining
	s.srv.mu.Unlock()
	if draining {
		return errDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateIdle {
		return errBusy
	}
	s.state = stateQueued
	s.runErr = ""
	s.interrupted = false
	s.srv.wg.Add(1)
	go s.execute(kind, spec)
	s.broadcastLocked("state", map[string]string{"state": stateQueued})
	return nil
}

// execute is the run goroutine: cache fast path, worker-slot admission,
// the estimator call, then result/cache/state bookkeeping.
func (s *session) execute(kind opKind, spec refineSpec) {
	defer s.srv.wg.Done()

	if kind == opRun {
		s.mu.Lock()
		key := s.cacheKeyLocked()
		s.mu.Unlock()
		if res, ok := s.srv.cache.get(key); ok {
			s.finish(res, nil, true)
			return
		}
	}

	// Admission control: a bounded pool of worker slots caps concurrent
	// sampling loops; everything else queues here (or gives up when the
	// session is cancelled while waiting).
	select {
	case s.srv.slots <- struct{}{}:
	case <-s.runCtx.Done():
		s.finish(nil, s.runCtx.Err(), false)
		return
	}
	defer func() { <-s.srv.slots }()

	s.setState(stateRunning)

	var res *betweenness.Result
	var err error
	switch kind {
	case opRefine:
		res, err = s.est.Refine(s.runCtx, spec.opts...)
		if err == nil && spec.apply != nil {
			s.mu.Lock()
			spec.apply(&s.params)
			s.mu.Unlock()
		}
	default:
		res, err = s.est.Run(s.runCtx)
	}
	if err == nil && res != nil && res.Converged {
		s.mu.Lock()
		key := s.cacheKeyLocked()
		s.mu.Unlock()
		s.srv.cache.put(key, res)
	}
	s.finish(res, err, false)
}

// setState transitions the op state and notifies subscribers.
func (s *session) setState(state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = state
	s.broadcastLocked("state", map[string]string{"state": state})
}

// finish records the outcome of an operation and returns the session to
// idle. A cancellation is not a failure: the estimator's contract keeps
// the state consistent and resumable, so the session simply reports
// interrupted with its samples retained.
func (s *session) finish(res *betweenness.Result, err error, fromCache bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = stateIdle
	switch {
	case err == nil:
		s.result = res
		s.cached = fromCache
		s.converged = res != nil && res.Converged
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.interrupted = true
	default:
		s.runErr = err.Error()
	}
	s.broadcastLocked("state", map[string]string{"state": stateIdle})
	switch {
	case err == nil:
		s.broadcastLocked("result", map[string]any{
			"converged":    s.converged,
			"cached":       fromCache,
			"tau":          res.Tau,
			"achieved_eps": res.AchievedEps,
		})
	case s.interrupted:
		s.broadcastLocked("interrupted", map[string]string{"reason": err.Error()})
	default:
		s.broadcastLocked("error", map[string]string{"error": err.Error()})
	}
}

// progress is the WithProgress hook: it fans each per-epoch snapshot out
// to the SSE subscribers.
func (s *session) progress(snap betweenness.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.broadcastLocked("progress", snapshotJSON(snap))
}

// subscribe registers an SSE subscriber; the returned cancel must be
// called when the client goes away. Events are dropped, never blocked on:
// a slow subscriber misses epochs, not the run.
func (s *session) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 32)
	s.mu.Lock()
	if s.subs == nil {
		s.subs = make(map[chan []byte]struct{})
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}
}

// broadcastLocked formats one SSE frame and offers it to every subscriber.
// Callers hold s.mu.
func (s *session) broadcastLocked(event string, data any) {
	if len(s.subs) == 0 {
		return
	}
	payload, err := json.Marshal(data)
	if err != nil {
		return
	}
	frame := []byte("event: " + event + "\ndata: " + string(payload) + "\n\n")
	for ch := range s.subs {
		select {
		case ch <- frame:
		default: // slow subscriber: drop, never block the sampling loop
		}
	}
}

// snapshotJSON is the wire shape of a betweenness.Snapshot (estimates
// elided — they go through the result endpoint).
func snapshotJSON(snap betweenness.Snapshot) map[string]any {
	return map[string]any{
		"epoch":           snap.Epoch,
		"tau":             snap.Tau,
		"achieved_eps":    snap.AchievedEps,
		"samples_per_sec": snap.SamplesPerSec,
		"live":            snap.Live,
	}
}

var (
	errBusy     = errors.New("session already has an operation queued or running")
	errDraining = errors.New("server is draining")
)
