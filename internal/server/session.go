package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/betweenness"
)

// Session states. A session is a state machine serialized by its own
// mutex: at most one run or refine is queued or executing at a time, which
// is also what the underlying Estimator's contract expects.
const (
	stateIdle    = "idle"    // no operation pending; Run/Refine accepted
	stateQueued  = "queued"  // operation accepted, waiting for a worker slot
	stateRunning = "running" // operation executing
)

// sessionParams is the statistical identity and budget of a session as its
// creator requested it — the JSON body of POST /sessions and the persisted
// session metadata are both this shape.
type sessionParams struct {
	Graph string  `json:"graph"`
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	// Threads is the sampling thread count (shm backend; 0 = one per core).
	Threads int `json:"threads,omitempty"`
	// Backend is seq | shm | dist | alg1 (default seq: resumable and the
	// fastest below the shared-memory epoch overhead on small graphs).
	Backend string `json:"backend,omitempty"`
	// Procs is the in-process rank count of the dist/alg1 backends.
	Procs int `json:"procs,omitempty"`
	TopK  int `json:"top_k,omitempty"`
	// MaxSamples and MaxDuration are per-Run admission budgets.
	MaxSamples  int64  `json:"max_samples,omitempty"`
	MaxDuration string `json:"max_duration,omitempty"`
}

// normalize fills defaults and validates the parts the server owns (the
// statistical ranges are validated again by the betweenness options).
func (p *sessionParams) normalize() error {
	if p.Eps == 0 {
		p.Eps = 0.01
	}
	if p.Delta == 0 {
		p.Delta = 0.1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Backend == "" {
		p.Backend = "seq"
	}
	switch p.Backend {
	case "seq", "shm":
	case "dist", "alg1":
		if p.Procs == 0 {
			p.Procs = 2
		}
		if p.Procs < 1 {
			return fmt.Errorf("procs must be >= 1, got %d", p.Procs)
		}
	default:
		return fmt.Errorf("unknown backend %q (want seq|shm|dist|alg1; tcp worlds cannot live inside the daemon)", p.Backend)
	}
	if p.MaxDuration != "" {
		if _, err := time.ParseDuration(p.MaxDuration); err != nil {
			return fmt.Errorf("bad max_duration: %v", err)
		}
	}
	return nil
}

// distBackend reports whether the params name an in-process distributed
// backend — the ones whose runs can die of rank death and are worth
// retrying on a smaller world.
func (p sessionParams) distBackend() bool {
	return p.Backend == "dist" || p.Backend == "alg1"
}

// executor builds the backend the params name.
func (p sessionParams) executor() betweenness.Executor {
	switch p.Backend {
	case "shm":
		return betweenness.SharedMemory()
	case "dist":
		return betweenness.LocalMPI(p.Procs)
	case "alg1":
		return betweenness.PureMPI(p.Procs)
	default:
		return betweenness.Sequential()
	}
}

// options maps the params onto betweenness options, progress hook
// included. The progress hook is what keeps GET /sessions/{id} fresh to
// within one epoch mid-run and feeds the SSE stream; its per-epoch O(n)
// bound sweep is the cost of a live service.
func (p sessionParams) options(progress func(betweenness.Snapshot)) ([]betweenness.Option, error) {
	opts := []betweenness.Option{
		betweenness.WithEpsilon(p.Eps),
		betweenness.WithDelta(p.Delta),
		betweenness.WithSeed(p.Seed),
		betweenness.WithExecutor(p.executor()),
		betweenness.WithProgress(progress),
	}
	if p.Threads > 0 {
		opts = append(opts, betweenness.WithThreads(p.Threads))
	}
	if p.TopK > 0 {
		opts = append(opts, betweenness.WithTopK(p.TopK))
	}
	if p.MaxSamples > 0 {
		opts = append(opts, betweenness.WithMaxSamples(p.MaxSamples))
	}
	if p.MaxDuration != "" {
		d, err := time.ParseDuration(p.MaxDuration)
		if err != nil {
			return nil, err
		}
		opts = append(opts, betweenness.WithMaxDuration(d))
	}
	return opts, nil
}

// session is one named estimation session: an Estimator plus the service
// state around it — the op state machine, the result of the last completed
// operation, and the SSE subscriber set.
type session struct {
	id  string
	srv *Server
	g   *graphEntry

	// cancel aborts this session's in-flight operation (DELETE mid-run);
	// runCtx is additionally cancelled server-wide by Drain.
	runCtx context.Context
	cancel context.CancelFunc

	mu sync.Mutex
	// est is replaced only by the distributed-failure recovery ladder
	// (rebuild), which runs on the op goroutine while the session is
	// formally running — everyone else reads it through estimator().
	est       *betweenness.Estimator
	params    sessionParams
	state     string
	result    *betweenness.Result
	runErr    string
	cached    bool
	converged bool
	// interrupted reports the last operation was stopped early with its
	// samples retained (cancellation, drain, or the server run watchdog);
	// interruptReason says which.
	interrupted     bool
	interruptReason string
	// degraded, when non-empty, records that the session no longer runs
	// exactly as requested: a distributed world shrank or fell back to the
	// shared-memory backend after rank deaths, or a restart restored a
	// synthesized checkpoint onto the sequential engine.
	degraded string
	// lastCkptTau is the sample count of the last persisted checkpoint,
	// used to skip no-op checkpoint writes.
	lastCkptTau int64
	subs        map[chan []byte]struct{}
}

// estimator returns the session's current estimator. The pointer is stable
// for the duration of any one operation; it changes only when the recovery
// ladder rebuilds the session between attempts.
func (s *session) estimator() *betweenness.Estimator {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est
}

// noteCheckpoint records the sample count just persisted.
func (s *session) noteCheckpoint(tau int64) {
	s.mu.Lock()
	s.lastCkptTau = tau
	s.mu.Unlock()
}

// currentParams returns a copy of the session params.
func (s *session) currentParams() sessionParams {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.params
}

// refineSpec carries a validated refine request from the handler to the
// run goroutine.
type refineSpec struct {
	opts []betweenness.Option
	// apply mutates the session params after a successful refine, so the
	// cache key and the persisted metadata track the session's current
	// statistical identity.
	apply func(*sessionParams)
}

type opKind int

const (
	opRun opKind = iota
	opRefine
)

// cacheKey is the full statistical identity of this session's next Run:
// sessions with equal keys produce bit-identical converged results.
// Callers hold s.mu.
func (s *session) cacheKeyLocked() string {
	p := s.params
	var b strings.Builder
	b.WriteString(s.g.digest)
	b.WriteByte('|')
	b.WriteString(kindString(s.g.kind))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(p.Eps, 'x', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(p.Delta, 'x', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(p.Seed, 10))
	b.WriteByte('|')
	b.WriteString(p.Backend)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(p.Threads))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(p.Procs))
	return b.String()
}

// start accepts a run or refine if the session is idle and the server is
// not draining, and hands it to a goroutine. The per-session serialization
// lives here: one queued-or-running operation at a time.
func (s *session) start(kind opKind, spec refineSpec) error {
	s.srv.mu.Lock()
	draining := s.srv.draining
	s.srv.mu.Unlock()
	if draining {
		return errDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateIdle {
		return errBusy
	}
	s.state = stateQueued
	s.runErr = ""
	s.interrupted = false
	s.interruptReason = ""
	s.srv.wg.Add(1)
	go s.execute(kind, spec)
	s.broadcastLocked("state", map[string]string{"state": stateQueued})
	return nil
}

// execute is the run goroutine: cache fast path, worker-slot admission,
// the estimator call (watchdogged, with distributed-failure recovery),
// then checkpoint/result/cache/state bookkeeping.
func (s *session) execute(kind opKind, spec refineSpec) {
	defer s.srv.wg.Done()

	if kind == opRun {
		s.mu.Lock()
		key := s.cacheKeyLocked()
		s.mu.Unlock()
		if res, ok := s.srv.cache.get(key); ok {
			s.finish(res, nil, true)
			return
		}
	}

	// Admission control: a bounded pool of worker slots caps concurrent
	// sampling loops; everything else queues here (or gives up when the
	// session is cancelled while waiting).
	select {
	case s.srv.slots <- struct{}{}:
	case <-s.runCtx.Done():
		s.finish(nil, s.runCtx.Err(), false)
		return
	}
	defer func() { <-s.srv.slots }()

	s.setState(stateRunning)

	// The run watchdog: a server-side ceiling on one operation's wall
	// clock, independent of any budget the client asked for. The estimator
	// contract makes expiry safe — the accumulated samples survive and the
	// session reports interrupted, not failed.
	ctx := s.runCtx
	cancelWatchdog := func() {}
	if t := s.srv.cfg.RunTimeout; t > 0 {
		ctx, cancelWatchdog = context.WithTimeout(ctx, t)
	}

	var res *betweenness.Result
	var err error
	switch kind {
	case opRefine:
		res, err = s.estimator().Refine(ctx, spec.opts...)
		if err == nil && spec.apply != nil {
			s.mu.Lock()
			spec.apply(&s.params)
			s.mu.Unlock()
		}
	default:
		res, err = s.runRecovering(ctx)
	}
	cancelWatchdog()
	if err == nil && res != nil && res.Converged {
		s.mu.Lock()
		key := s.cacheKeyLocked()
		s.mu.Unlock()
		s.srv.cache.put(key, res)
	}
	// Persist the outcome before the session flips back to idle: this
	// goroutine still owns the estimator exclusively (no new op can start
	// while state is "running"), so the checkpoint races nothing, and an
	// unclean death any time after it loses none of this operation's work.
	s.srv.checkpointAfterOp(s)
	s.finish(res, err, false)
}

// Recovery-ladder tuning: first retry after distRetryBase, doubling per
// attempt, at most distRetryAttempts rebuilds (enough to walk procs down
// and land on shm for typical worlds).
const (
	distRetryBase     = 250 * time.Millisecond
	distRetryAttempts = 4
)

// runRecovering executes a Run, and — for the distributed backends — walks
// the degradation ladder when the run dies of a rank death the in-run
// shrink-and-recalibrate recovery could not absorb: retry with exponential
// backoff on a world one rank smaller, and once the world is minimal,
// degrade to the shared-memory backend. Each step is recorded in the
// session's degraded note and surfaced in its status instead of a bare
// run error.
func (s *session) runRecovering(ctx context.Context) (*betweenness.Result, error) {
	res, err := s.estimator().Run(ctx)
	backoff := distRetryBase
	for attempt := 0; attempt < distRetryAttempts; attempt++ {
		if err == nil || !isDistDeath(err) || ctx.Err() != nil {
			return res, err
		}
		p, note, ok := shrinkOrDegrade(s.currentParams())
		if !ok {
			return res, err
		}
		s.noteDegraded(fmt.Sprintf("%s after %v", note, err))
		if rerr := s.rebuild(p); rerr != nil {
			return nil, fmt.Errorf("%v; rebuilding session to retry: %w", err, rerr)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff *= 2
		res, err = s.estimator().Run(ctx)
	}
	return res, err
}

// isDistDeath reports whether err is a distributed-run fatality worth
// retrying on a reconfigured backend.
func isDistDeath(err error) bool {
	return betweenness.IsRankDeath(err) || errors.Is(err, betweenness.ErrCoordinatorLost)
}

// shrinkOrDegrade computes the next rung of the degradation ladder for
// params whose run just died of a rank death: shrink the world by one rank
// while more than two remain, then fall back to the shared-memory backend.
// ok is false when the params are not degradable (already single-process).
func shrinkOrDegrade(p sessionParams) (next sessionParams, note string, ok bool) {
	if !p.distBackend() {
		return p, "", false
	}
	if p.Procs > 2 {
		p.Procs--
		return p, fmt.Sprintf("retrying on a shrunken world of %d ranks", p.Procs), true
	}
	p.Backend, p.Procs = "shm", 0
	return p, "degraded from the distributed backend to shared-memory", true
}

// rebuild replaces the session's estimator with one built for the new
// params. It runs on the op goroutine while the session is formally
// running, so no other operation can observe the swap mid-flight. The dist
// backends are one-shot (no in-process sampling state), so nothing is lost
// in the swap beyond what the failed run already lost.
func (s *session) rebuild(p sessionParams) error {
	opts, err := s.srv.sessionOptions(s, p)
	if err != nil {
		return err
	}
	est, err := betweenness.NewEstimator(s.g.workload(), opts...)
	if err != nil {
		return err
	}
	s.srv.wireCheckpointSink(s, est)
	s.mu.Lock()
	s.params = p
	s.est = est
	s.mu.Unlock()
	if err := s.srv.persistSessionMeta(s, false); err != nil {
		s.srv.cfg.Logf("warning: persisting session %s meta: %v", s.id, err)
	}
	return nil
}

// noteDegraded records (and broadcasts) a degradation step.
func (s *session) noteDegraded(note string) {
	s.srv.cfg.Logf("session %s: %s", s.id, note)
	s.mu.Lock()
	s.degraded = note
	s.broadcastLocked("degraded", map[string]string{"degraded": note})
	s.mu.Unlock()
}

// setState transitions the op state and notifies subscribers.
func (s *session) setState(state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = state
	s.broadcastLocked("state", map[string]string{"state": state})
}

// finish records the outcome of an operation and returns the session to
// idle. A cancellation or watchdog expiry is not a failure: the estimator's
// contract keeps the state consistent and resumable, so the session simply
// reports interrupted with its samples retained.
func (s *session) finish(res *betweenness.Result, err error, fromCache bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = stateIdle
	switch {
	case err == nil:
		s.result = res
		s.cached = fromCache
		s.converged = res != nil && res.Converged
	case errors.Is(err, context.DeadlineExceeded):
		s.interrupted = true
		s.interruptReason = fmt.Sprintf(
			"run watchdog: exceeded the server run timeout (%s); samples retained, run again to continue",
			s.srv.cfg.RunTimeout)
	case errors.Is(err, context.Canceled):
		s.interrupted = true
		s.interruptReason = "cancelled; samples retained"
	default:
		s.runErr = err.Error()
	}
	s.broadcastLocked("state", map[string]string{"state": stateIdle})
	switch {
	case err == nil:
		s.broadcastLocked("result", map[string]any{
			"converged":    s.converged,
			"cached":       fromCache,
			"tau":          res.Tau,
			"achieved_eps": res.AchievedEps,
		})
	case s.interrupted:
		s.broadcastLocked("interrupted", map[string]string{"reason": s.interruptReason})
	default:
		s.broadcastLocked("error", map[string]string{"error": err.Error()})
	}
}

// progress is the WithProgress hook: it fans each per-epoch snapshot out
// to the SSE subscribers.
func (s *session) progress(snap betweenness.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.broadcastLocked("progress", snapshotJSON(snap))
}

// subscribe registers an SSE subscriber; the returned cancel must be
// called when the client goes away. Events are dropped, never blocked on:
// a slow subscriber misses epochs, not the run.
func (s *session) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 32)
	s.mu.Lock()
	if s.subs == nil {
		s.subs = make(map[chan []byte]struct{})
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}
}

// broadcastLocked formats one SSE frame and offers it to every subscriber.
// Callers hold s.mu.
func (s *session) broadcastLocked(event string, data any) {
	if len(s.subs) == 0 {
		return
	}
	payload, err := json.Marshal(data)
	if err != nil {
		return
	}
	frame := []byte("event: " + event + "\ndata: " + string(payload) + "\n\n")
	for ch := range s.subs {
		select {
		case ch <- frame:
		default: // slow subscriber: drop, never block the sampling loop
		}
	}
}

// snapshotJSON is the wire shape of a betweenness.Snapshot (estimates
// elided — they go through the result and estimates endpoints).
func snapshotJSON(snap betweenness.Snapshot) map[string]any {
	return map[string]any{
		"epoch":           snap.Epoch,
		"tau":             snap.Tau,
		"achieved_eps":    snap.AchievedEps,
		"samples_per_sec": snap.SamplesPerSec,
		"live":            snap.Live,
	}
}

var (
	errBusy     = errors.New("session already has an operation queued or running")
	errDraining = errors.New("server is draining")
)
