package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/betweenness"
	"repro/graph"
)

// On-disk layout under Config.DataDir (everything written atomically via
// tmp+rename with file and directory fsyncs, so a crash at ANY point —
// SIGKILL, OOM kill, power loss — leaves each file holding either its old
// bytes or its new bytes in full, never a torn mix):
//
//	graphs/<name>.json     graph metadata (kind, digest, sizes)
//	graphs/<name>.graph    canonical graph bytes (BCSR v2 for undirected —
//	                       served back to sessions by mmap — arc list /
//	                       weighted edge list for the others)
//	sessions/<id>.json     session metadata (params + outcome flags)
//	sessions/<id>.bck      estimator checkpoint (the versioned BCSE
//	                       envelope from betweenness.Checkpoint)
//	cache/<hash>.bcr       spilled result-cache entries (see diskcache.go)
//	quarantine/            damaged files set aside by the recovery scan
//
// Graphs persist at registration; session metadata persists at creation,
// refine, and degradation; checkpoints are written at the end of every run
// or refine, every CheckpointInterval during a run (via the estimator's
// in-run capture hook), and by Drain. The startup recovery scan
// (recovery.go) CRC-verifies what it finds and quarantines damage instead
// of failing, so a daemon that died uncleanly always comes back up.

type graphMeta struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Digest  string `json:"digest"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Reduced bool   `json:"reduced"`
}

type sessionMeta struct {
	ID     string        `json:"id"`
	Params sessionParams `json:"params"`
	// Converged/Cached describe the last completed operation, so a
	// restarted daemon reports the same session status it went down with.
	Converged bool `json:"converged"`
	Cached    bool `json:"cached"`
	// HasCheckpoint marks that a .bck file holds the estimator state.
	// Informational: rehydration trusts the file itself (see
	// checkpointPathFor), since a crash can land between the checkpoint
	// write and this flag's.
	HasCheckpoint bool `json:"has_checkpoint"`
	// Degraded carries the session's degradation note (a dist world that
	// shrank or fell back to shm, a checkpoint restored cross-engine)
	// across restarts.
	Degraded string `json:"degraded,omitempty"`
}

func (srv *Server) graphsDir() string   { return filepath.Join(srv.cfg.DataDir, "graphs") }
func (srv *Server) sessionsDir() string { return filepath.Join(srv.cfg.DataDir, "sessions") }
func (srv *Server) cacheDir() string    { return filepath.Join(srv.cfg.DataDir, "cache") }

// errSimulatedCrash is returned by the test-only crash-injection hook.
var errSimulatedCrash = errors.New("server: simulated crash between tmp write and rename")

// crashBeforeRename, when non-nil, simulates an unclean death between the
// durable temp-file write and the atomic rename: writeAtomic stops with the
// tmp file left behind, exactly the state a real crash at that point
// produces. Test-only; see TestCrashPointLeavesTmpQuarantined.
var crashBeforeRename func(path string) bool

// writeAtomic streams content to path via a same-directory temp file,
// fsyncs it, renames it into place, and fsyncs the directory — the rename
// is not durable until the directory entry is, so skipping the last step
// would let a power loss resurrect the old file or lose the new one. A
// failed or interrupted attempt leaves at most a *.tmp file, which the
// startup recovery scan quarantines.
func writeAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if crashBeforeRename != nil && crashBeforeRename(path) {
		return errSimulatedCrash
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileAtomic writes data to path via writeAtomic.
func writeFileAtomic(path string, data []byte) error {
	return writeAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// persistGraph writes the graph's canonical bytes and metadata. No-op
// without a data dir. Undirected graphs persist as BCSR v2 and, once the
// file is durable, the entry is switched to serve sessions off the mmap
// of that file — the upload's heap copy becomes garbage and the page
// cache backs every session that follows.
func (srv *Server) persistGraph(g *graphEntry) error {
	if srv.cfg.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(srv.graphsDir(), 0o755); err != nil {
		return err
	}
	path := filepath.Join(srv.graphsDir(), g.name+".graph")
	err := writeAtomic(path, func(w io.Writer) error {
		switch g.kind {
		case betweenness.WorkloadDirected:
			return graph.WriteArcList(w, g.dig)
		case betweenness.WorkloadWeighted:
			return graph.WriteWeightedEdgeList(w, g.wgt)
		default:
			return graph.WriteBCSR2(w, g.und.Load(), graph.WriteOptions{})
		}
	})
	if err != nil {
		return err
	}
	if g.kind == betweenness.WorkloadUndirected {
		if m, err := graph.OpenMapped(path); err == nil {
			srv.mu.Lock()
			g.mapped = m
			srv.mu.Unlock()
			g.und.Store(m.Graph())
		} else {
			// Serving the heap copy is always correct; the mapping is an
			// optimization, so its failure only costs memory.
			srv.cfg.Logf("warning: mapping persisted graph %q: %v", g.name, err)
		}
	}
	return writeJSONAtomic(filepath.Join(srv.graphsDir(), g.name+".json"), graphMeta{
		Name:    g.name,
		Kind:    kindString(g.kind),
		Digest:  g.digest,
		Nodes:   g.nodes,
		Edges:   g.edges,
		Reduced: g.reduced,
	})
}

// dropGraphFiles removes a deleted graph's files (best effort).
func (srv *Server) dropGraphFiles(name string) {
	if srv.cfg.DataDir == "" {
		return
	}
	os.Remove(filepath.Join(srv.graphsDir(), name+".graph"))
	os.Remove(filepath.Join(srv.graphsDir(), name+".json"))
}

// persistSessionMeta writes the session's metadata file. Callers must not
// hold s.mu. No-op without a data dir.
func (srv *Server) persistSessionMeta(s *session, hasCkpt bool) error {
	if srv.cfg.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(srv.sessionsDir(), 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	meta := sessionMeta{
		ID:            s.id,
		Params:        s.params,
		Converged:     s.converged,
		Cached:        s.cached,
		HasCheckpoint: hasCkpt,
		Degraded:      s.degraded,
	}
	s.mu.Unlock()
	return writeJSONAtomic(filepath.Join(srv.sessionsDir(), s.id+".json"), meta)
}

// checkpointSession writes the estimator state next to the metadata,
// returning whether a checkpoint was produced (one-shot backends and
// sample-less sessions produce none, by design). Call only while the
// estimator is quiescent — between operations, or from the goroutine that
// just finished one.
func (srv *Server) checkpointSession(s *session) (bool, error) {
	est := s.estimator()
	if srv.cfg.DataDir == "" || !est.Checkpointable() {
		return false, nil
	}
	snap := est.Snapshot()
	if snap.Tau == 0 {
		return false, nil // nothing sampled yet; a fresh session is cheaper than a checkpoint
	}
	if err := os.MkdirAll(srv.sessionsDir(), 0o755); err != nil {
		return false, err
	}
	path := filepath.Join(srv.sessionsDir(), s.id+".bck")
	if err := writeAtomic(path, est.Checkpoint); err != nil {
		return false, err
	}
	s.noteCheckpoint(snap.Tau)
	return true, nil
}

// writeSessionCheckpoint persists a sealed checkpoint payload captured
// while the session's run is in flight. It is the sink behind both in-run
// capture paths — Estimator.SetCheckpointSink on the seq/shm engines and
// WithDistCheckpoint on the dist backends — and runs on the engine's
// coordinating goroutine between epochs, so it must only hand the bytes to
// the filesystem and go. Failures are logged, never fatal: a missed
// periodic checkpoint degrades the durability window, not the run.
func (srv *Server) writeSessionCheckpoint(s *session, payload []byte) {
	if srv.cfg.DataDir == "" || !srv.sessionLive(s) {
		return
	}
	if err := os.MkdirAll(srv.sessionsDir(), 0o755); err != nil {
		srv.cfg.Logf("warning: in-run checkpoint for %s: %v", s.id, err)
		return
	}
	path := filepath.Join(srv.sessionsDir(), s.id+".bck")
	if err := writeFileAtomic(path, payload); err != nil {
		srv.cfg.Logf("warning: in-run checkpoint for %s: %v", s.id, err)
		return
	}
	// The progress hook keeps the last observation fresh per epoch, so this
	// tau tracks what the payload holds closely enough to dedupe no-op
	// checkpoints at the end of the run.
	s.noteCheckpoint(s.estimator().Snapshot().Tau)
	if err := srv.persistSessionMeta(s, true); err != nil {
		srv.cfg.Logf("warning: persisting session %s meta: %v", s.id, err)
	}
}

// checkpointAfterOp persists the estimator state at the end of a run or
// refine. It runs on the op goroutine after the estimate returned but
// before the session flips back to idle, so it still owns the estimator
// exclusively — no lock juggling with a new op — and an unclean death any
// time after it loses nothing of the completed operation. No-op when
// nothing new was sampled (cache-hit completions, failed admissions).
func (srv *Server) checkpointAfterOp(s *session) {
	if srv.cfg.DataDir == "" || !srv.sessionLive(s) {
		return
	}
	est := s.estimator()
	if !est.Checkpointable() {
		return
	}
	tau := est.Snapshot().Tau
	s.mu.Lock()
	last := s.lastCkptTau
	s.mu.Unlock()
	if tau == 0 || tau == last {
		return
	}
	hasCkpt, err := srv.checkpointSession(s)
	if err == nil {
		err = srv.persistSessionMeta(s, hasCkpt)
	}
	if err != nil {
		srv.cfg.Logf("warning: checkpointing session %s: %v", s.id, err)
	}
}

// dropSessionFiles removes a deleted session's files (best effort).
func (srv *Server) dropSessionFiles(id string) {
	if srv.cfg.DataDir == "" {
		return
	}
	os.Remove(filepath.Join(srv.sessionsDir(), id+".json"))
	os.Remove(filepath.Join(srv.sessionsDir(), id+".bck"))
}

// loadGraphs rehydrates the graph registry from the data dir. Damaged
// entries are quarantined and skipped (their sessions are quarantined by
// loadSessions in turn); only a filesystem-level failure aborts startup.
func (srv *Server) loadGraphs() error {
	entries, err := os.ReadDir(srv.graphsDir())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		metaPath := filepath.Join(srv.graphsDir(), de.Name())
		g, err := srv.loadGraphEntry(metaPath)
		if err != nil {
			srv.quarantine(metaPath, err.Error())
			srv.quarantine(strings.TrimSuffix(metaPath, ".json")+".graph",
				"graph bytes for quarantined metadata")
			continue
		}
		srv.graphs[g.name] = g
	}
	return nil
}

// loadGraphEntry loads one graph from its metadata file.
func (srv *Server) loadGraphEntry(metaPath string) (*graphEntry, error) {
	data, err := os.ReadFile(metaPath)
	if err != nil {
		return nil, err
	}
	var meta graphMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("graph meta %s: %w", filepath.Base(metaPath), err)
	}
	kind, err := parseKind(meta.Kind)
	if err != nil {
		return nil, fmt.Errorf("graph meta %s: %w", filepath.Base(metaPath), err)
	}
	g := &graphEntry{
		name:    meta.Name,
		kind:    kind,
		digest:  meta.Digest,
		nodes:   meta.Nodes,
		edges:   meta.Edges,
		reduced: meta.Reduced,
	}
	path := filepath.Join(srv.graphsDir(), meta.Name+".graph")
	switch kind {
	case betweenness.WorkloadDirected:
		g.dig, err = graph.LoadDigraphFile(path)
	case betweenness.WorkloadWeighted:
		g.wgt, err = graph.LoadWGraphFile(path)
	default:
		var m *graph.Mapped
		m, err = graph.OpenMapped(path)
		if err == nil {
			g.mapped = m
			g.und.Store(m.Graph())
			break
		}
		if errors.Is(err, graph.ErrBCSRVersion) {
			// A store written before the v2 format: load the v1 bytes to
			// the heap this once; the next persist rewrites them as v2.
			var f *os.File
			f, err = os.Open(path)
			if err == nil {
				var und *graph.Graph
				und, err = graph.ReadBinary(f)
				f.Close()
				g.und.Store(und)
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("loading graph %s: %w", meta.Name, err)
	}
	return g, nil
}

// loadSessions rehydrates sessions: checkpointed ones resume their exact
// sampling state via RestoreEstimator; the rest are recreated fresh (same
// identity, zero samples). A torn or corrupt checkpoint is quarantined and
// its session served fresh; unreadable metadata quarantines the whole
// session. Startup only fails on filesystem-level errors.
func (srv *Server) loadSessions() error {
	entries, err := os.ReadDir(srv.sessionsDir())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	maxID := 0
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		metaPath := filepath.Join(srv.sessionsDir(), de.Name())
		id := strings.TrimSuffix(de.Name(), ".json")
		quarantineSession := func(reason string) {
			srv.quarantine(metaPath, reason)
			srv.quarantine(filepath.Join(srv.sessionsDir(), id+".bck"),
				"checkpoint for quarantined session metadata")
		}
		data, err := os.ReadFile(metaPath)
		if err != nil {
			quarantineSession(err.Error())
			continue
		}
		var meta sessionMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			quarantineSession(fmt.Sprintf("unreadable session metadata: %v", err))
			continue
		}
		g, ok := srv.graphs[meta.Params.Graph]
		if !ok {
			quarantineSession(fmt.Sprintf("references unknown graph %q (missing or quarantined)", meta.Params.Graph))
			continue
		}
		ckptPath := srv.checkpointPathFor(meta.ID)
		s, err := srv.buildSession(meta.ID, g, meta.Params, ckptPath)
		if err != nil && ckptPath != "" {
			// The checkpoint is torn, corrupt, or version-skewed: set it
			// aside and serve the session fresh — identity intact, the
			// damaged samples lost, startup unharmed.
			srv.quarantine(ckptPath, err.Error())
			s, err = srv.buildSession(meta.ID, g, meta.Params, "")
			if err == nil {
				s.degraded = "checkpoint quarantined at startup; session restarted fresh"
			}
		}
		if err != nil {
			quarantineSession(fmt.Sprintf("restoring session: %v", err))
			continue
		}
		s.converged = meta.Converged
		s.cached = meta.Cached
		if meta.Degraded != "" && s.degraded == "" {
			s.degraded = meta.Degraded
		}
		srv.sessions[s.id] = s
		g.refs++
		if n, ok := sessionNumber(meta.ID); ok && n > maxID {
			maxID = n
		}
	}
	if srv.nextSession <= maxID {
		srv.nextSession = maxID + 1
	}
	return nil
}

// checkpointPathFor returns the on-disk checkpoint to restore from, or ""
// when the session restarts fresh. It trusts the file, not the metadata
// flag: an in-run checkpoint and its metadata update are two separate
// writes, and a crash between them must not hide a good checkpoint.
func (srv *Server) checkpointPathFor(id string) string {
	path := filepath.Join(srv.sessionsDir(), id+".bck")
	if _, err := os.Stat(path); err != nil {
		return ""
	}
	return path
}

// sessionNumber parses the numeric part of a generated "s<N>" id.
func sessionNumber(id string) (int, bool) {
	if len(id) < 2 || id[0] != 's' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
