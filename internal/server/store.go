package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/betweenness"
	"repro/graph"
)

// On-disk layout under Config.DataDir (everything written atomically via
// tmp+rename, so a crash mid-write never leaves a torn file):
//
//	graphs/<name>.json     graph metadata (kind, digest, sizes)
//	graphs/<name>.graph    canonical graph bytes (BCSR for undirected,
//	                       arc list / weighted edge list for the others)
//	sessions/<id>.json     session metadata (params + outcome flags)
//	sessions/<id>.bck      estimator checkpoint (the versioned BCSE
//	                       envelope from betweenness.Checkpoint)
//
// Graphs persist at registration; session metadata persists at creation
// and refine; checkpoints are written by Drain (and only then — the
// steady-state sampling path never pays for durability it wasn't asked
// for).

type graphMeta struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Digest  string `json:"digest"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Reduced bool   `json:"reduced"`
}

type sessionMeta struct {
	ID     string        `json:"id"`
	Params sessionParams `json:"params"`
	// Converged/Cached describe the last completed operation, so a
	// restarted daemon reports the same session status it went down with.
	Converged bool `json:"converged"`
	Cached    bool `json:"cached"`
	// HasCheckpoint marks that a .bck file holds the estimator state.
	HasCheckpoint bool `json:"has_checkpoint"`
}

func (srv *Server) graphsDir() string   { return filepath.Join(srv.cfg.DataDir, "graphs") }
func (srv *Server) sessionsDir() string { return filepath.Join(srv.cfg.DataDir, "sessions") }

// writeFileAtomic writes data to path via a temp file and rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// persistGraph writes the graph's canonical bytes and metadata. No-op
// without a data dir.
func (srv *Server) persistGraph(g *graphEntry) error {
	if srv.cfg.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(srv.graphsDir(), 0o755); err != nil {
		return err
	}
	path := filepath.Join(srv.graphsDir(), g.name+".graph")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	switch g.kind {
	case betweenness.WorkloadDirected:
		err = graph.WriteArcList(f, g.dig)
	case betweenness.WorkloadWeighted:
		err = graph.WriteWeightedEdgeList(f, g.wgt)
	default:
		err = graph.WriteBinary(f, g.und)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return writeJSONAtomic(filepath.Join(srv.graphsDir(), g.name+".json"), graphMeta{
		Name:    g.name,
		Kind:    kindString(g.kind),
		Digest:  g.digest,
		Nodes:   g.nodes,
		Edges:   g.edges,
		Reduced: g.reduced,
	})
}

// dropGraphFiles removes a deleted graph's files (best effort).
func (srv *Server) dropGraphFiles(name string) {
	if srv.cfg.DataDir == "" {
		return
	}
	os.Remove(filepath.Join(srv.graphsDir(), name+".graph"))
	os.Remove(filepath.Join(srv.graphsDir(), name+".json"))
}

// persistSessionMeta writes the session's metadata file. Callers must not
// hold s.mu. No-op without a data dir.
func (srv *Server) persistSessionMeta(s *session, hasCkpt bool) error {
	if srv.cfg.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(srv.sessionsDir(), 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	meta := sessionMeta{
		ID:            s.id,
		Params:        s.params,
		Converged:     s.converged,
		Cached:        s.cached,
		HasCheckpoint: hasCkpt,
	}
	s.mu.Unlock()
	return writeJSONAtomic(filepath.Join(srv.sessionsDir(), s.id+".json"), meta)
}

// checkpointSession writes the estimator state next to the metadata,
// returning whether a checkpoint was produced (one-shot backends and
// sample-less sessions produce none, by design).
func (srv *Server) checkpointSession(s *session) (bool, error) {
	if srv.cfg.DataDir == "" || !s.est.Checkpointable() {
		return false, nil
	}
	if s.est.Snapshot().Tau == 0 {
		return false, nil // nothing sampled yet; a fresh session is cheaper than a checkpoint
	}
	if err := os.MkdirAll(srv.sessionsDir(), 0o755); err != nil {
		return false, err
	}
	path := filepath.Join(srv.sessionsDir(), s.id+".bck")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return false, err
	}
	if err := s.est.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return false, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return false, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return false, err
	}
	return true, nil
}

// dropSessionFiles removes a deleted session's files (best effort).
func (srv *Server) dropSessionFiles(id string) {
	if srv.cfg.DataDir == "" {
		return
	}
	os.Remove(filepath.Join(srv.sessionsDir(), id+".json"))
	os.Remove(filepath.Join(srv.sessionsDir(), id+".bck"))
}

// loadGraphs rehydrates the graph registry from the data dir.
func (srv *Server) loadGraphs() error {
	entries, err := os.ReadDir(srv.graphsDir())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srv.graphsDir(), de.Name()))
		if err != nil {
			return err
		}
		var meta graphMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return fmt.Errorf("graph meta %s: %w", de.Name(), err)
		}
		kind, err := parseKind(meta.Kind)
		if err != nil {
			return fmt.Errorf("graph meta %s: %w", de.Name(), err)
		}
		g := &graphEntry{
			name:    meta.Name,
			kind:    kind,
			digest:  meta.Digest,
			nodes:   meta.Nodes,
			edges:   meta.Edges,
			reduced: meta.Reduced,
		}
		path := filepath.Join(srv.graphsDir(), meta.Name+".graph")
		switch kind {
		case betweenness.WorkloadDirected:
			g.dig, err = graph.LoadDigraphFile(path)
		case betweenness.WorkloadWeighted:
			g.wgt, err = graph.LoadWGraphFile(path)
		default:
			f, ferr := os.Open(path)
			if ferr != nil {
				err = ferr
				break
			}
			g.und, err = graph.ReadBinary(f)
			f.Close()
		}
		if err != nil {
			return fmt.Errorf("loading graph %s: %w", meta.Name, err)
		}
		srv.graphs[g.name] = g
	}
	return nil
}

// loadSessions rehydrates sessions: checkpointed ones resume their exact
// sampling state via RestoreEstimator; the rest are recreated fresh (same
// identity, zero samples).
func (srv *Server) loadSessions() error {
	entries, err := os.ReadDir(srv.sessionsDir())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	maxID := 0
	for _, de := range entries {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srv.sessionsDir(), de.Name()))
		if err != nil {
			return err
		}
		var meta sessionMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return fmt.Errorf("session meta %s: %w", de.Name(), err)
		}
		g, ok := srv.graphs[meta.Params.Graph]
		if !ok {
			return fmt.Errorf("session %s references unknown graph %q", meta.ID, meta.Params.Graph)
		}
		s, err := srv.buildSession(meta.ID, g, meta.Params, srv.checkpointPathFor(meta))
		if err != nil {
			return fmt.Errorf("restoring session %s: %w", meta.ID, err)
		}
		s.converged = meta.Converged
		s.cached = meta.Cached
		srv.sessions[s.id] = s
		g.refs++
		if n, ok := sessionNumber(meta.ID); ok && n > maxID {
			maxID = n
		}
	}
	srv.nextSession = maxID + 1
	return nil
}

// checkpointPathFor returns the checkpoint path to restore from, or ""
// when the session restarts fresh.
func (srv *Server) checkpointPathFor(meta sessionMeta) string {
	if !meta.HasCheckpoint {
		return ""
	}
	path := filepath.Join(srv.sessionsDir(), meta.ID+".bck")
	if _, err := os.Stat(path); err != nil {
		return ""
	}
	return path
}

// sessionNumber parses the numeric part of a generated "s<N>" id.
func sessionNumber(id string) (int, bool) {
	if len(id) < 2 || id[0] != 's' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
