package server

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"repro/betweenness"
	"repro/graph"
)

// graphEntry is one named, immutable graph shared by any number of
// sessions. Exactly one of und/dig/wgt is set, matching kind. The refs
// counter protects the graph from deletion under a live session: sessions
// take a reference at creation and release it at deletion, and
// DELETE /graphs/{name} refuses while refs > 0. The CSR itself needs no
// locking — it is immutable, which is the same property that lets sampler
// goroutines share it without synchronization.
type graphEntry struct {
	name   string
	kind   betweenness.WorkloadKind
	digest string
	nodes  int
	edges  int
	// reduced reports whether registration shrank the upload to its
	// largest (strongly) connected component.
	reduced bool
	refs    int

	// und is an atomic pointer because it is the one graph field rewritten
	// after registration: persistGraph swaps the upload's heap CSR for the
	// mmap of the persisted BCSR v2 file, while sessions may concurrently
	// read it (buildSession, rebuild) without holding srv.mu. Both values
	// are immutable, so the pointer swap is the only synchronization needed.
	und atomic.Pointer[graph.Graph]
	dig *graph.Digraph
	wgt *graph.WGraph

	// mapped, when non-nil, is the mmap handle und is served from: the
	// persisted BCSR v2 file, opened after registration (or at startup
	// rehydration) so sessions share the page cache instead of a heap
	// copy. Closed when the entry is deleted; the refs counter already
	// guarantees no session outlives it.
	mapped *graph.Mapped
}

// closeMapping releases the entry's mmap, if any. Call only once the
// entry has left the registry with refs == 0.
func (g *graphEntry) closeMapping() {
	if g.mapped != nil {
		g.mapped.Close()
		g.mapped = nil
	}
}

// workload builds the tagged workload for this graph. Construction is
// cheap (the digest closure is lazy; validation runs per estimate call).
func (g *graphEntry) workload() betweenness.Workload {
	switch g.kind {
	case betweenness.WorkloadDirected:
		return betweenness.Directed(g.dig)
	case betweenness.WorkloadWeighted:
		return betweenness.Weighted(g.wgt)
	default:
		return betweenness.Undirected(g.und.Load())
	}
}

// parseKind resolves the ?kind= upload parameter.
func parseKind(s string) (betweenness.WorkloadKind, error) {
	switch s {
	case "undirected":
		return betweenness.WorkloadUndirected, nil
	case "directed":
		return betweenness.WorkloadDirected, nil
	case "weighted":
		return betweenness.WorkloadWeighted, nil
	default:
		return 0, fmt.Errorf("unknown workload kind %q (want undirected|directed|weighted)", s)
	}
}

// buildGraphEntry parses an upload stream into a registered-graph entry:
// sniff the format, honour an explicit kind override, parse with the
// matching reader, and reduce to the largest (strongly) connected
// component so every session's workload validation rule holds by
// construction — the same normalization bcapprox applies.
//
// kindGiven distinguishes "no ?kind=" (format decides) from an explicit
// override: a two-column text upload is ambiguous between edge list and
// arc list, so ?kind=directed is how a headerless arc list is registered.
func buildGraphEntry(name string, r io.Reader, kindStr string) (*graphEntry, error) {
	format, r, err := graph.DetectFormat(r)
	if err != nil {
		return nil, fmt.Errorf("sniffing upload: %w", err)
	}

	kind := betweenness.WorkloadUndirected
	switch format {
	case graph.FormatArcList:
		kind = betweenness.WorkloadDirected
	case graph.FormatWeightedEdgeList:
		kind = betweenness.WorkloadWeighted
	case graph.FormatUnknown:
		if kindStr == "" {
			return nil, fmt.Errorf("%w (pass ?kind= and a recognizable body)", graph.ErrFormatUnknown)
		}
	}
	if kindStr != "" {
		override, err := parseKind(kindStr)
		if err != nil {
			return nil, err
		}
		if (format == graph.FormatBCSR || format == graph.FormatBCSR2) && override != betweenness.WorkloadUndirected {
			return nil, fmt.Errorf("BCSR uploads are undirected; cannot register as %s", override)
		}
		if format == graph.FormatWeightedEdgeList && override == betweenness.WorkloadDirected {
			return nil, fmt.Errorf("a weighted edge list cannot be registered as directed")
		}
		kind = override
	}

	e := &graphEntry{name: name, kind: kind}
	switch kind {
	case betweenness.WorkloadDirected:
		g, err := graph.ReadArcList(r)
		if err != nil {
			return nil, err
		}
		scc, _, err := graph.LargestSCC(g)
		if err != nil {
			return nil, err
		}
		e.reduced = scc.NumNodes() != g.NumNodes()
		e.dig, e.nodes, e.edges, e.digest = scc, scc.NumNodes(), scc.NumArcs(), scc.Digest()
	case betweenness.WorkloadWeighted:
		g, err := graph.ReadWeightedEdgeList(r)
		if err != nil {
			return nil, err
		}
		lcc, _, err := graph.LargestComponentW(g)
		if err != nil {
			return nil, err
		}
		e.reduced = lcc.NumNodes() != g.NumNodes()
		e.wgt, e.nodes, e.edges, e.digest = lcc, lcc.NumNodes(), lcc.NumEdges(), lcc.Digest()
	default:
		var g *graph.Graph
		switch format {
		case graph.FormatBCSR:
			g, err = graph.ReadBinary(r)
		case graph.FormatBCSR2:
			// Upload bodies are streams, so the v2 image decodes in
			// memory here; the persisted copy is what sessions are
			// served from by mmap (see Server.persistGraph).
			g, err = graph.ReadBCSR2(r)
		default:
			g, err = graph.ReadEdgeList(r)
		}
		if err != nil {
			return nil, err
		}
		lcc, _, err := graph.LargestComponent(g)
		if err != nil {
			return nil, err
		}
		e.reduced = lcc.NumNodes() != g.NumNodes()
		e.und.Store(lcc)
		e.nodes, e.edges, e.digest = lcc.NumNodes(), lcc.NumEdges(), lcc.Digest()
	}
	if e.name == "" {
		// Content-addressed default: stable across re-uploads of the same
		// graph, which makes idempotent registration natural.
		e.name = "g-" + strings.TrimPrefix(e.digest, "sha256:")[:12]
	}
	return e, nil
}

// kindString is the wire spelling of a workload kind (matches parseKind).
func kindString(k betweenness.WorkloadKind) string { return k.String() }
