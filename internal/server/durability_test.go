package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/betweenness"
)

// The crash-safety suite. The in-process "SIGKILL" is a crash image: a
// file-by-file copy of the data dir taken mid-run (reads go through the
// same atomic-rename files a real crash would leave, and *.tmp files are
// skipped as a crash leaves them unrenamed), restarted in a fresh Server.
// The real kill -9 against the real binary lives in
// scripts/crash_smoke.sh.

// copyDataDir snapshots src into a fresh directory, skipping *.tmp files
// (a crash image never contains a completed rename of an in-flight write).
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		if filepath.Ext(path) == ".tmp" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying data dir: %v", err)
	}
	return dst
}

// sessionTau reads the session's current sample count over the API.
func sessionTau(t *testing.T, base, id string) float64 {
	t.Helper()
	code, status := do(t, "GET", base+"/sessions/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET session %s: status %d", id, code)
	}
	return status["snapshot"].(map[string]any)["tau"].(float64)
}

// quarantineEntries lists the base names currently in the quarantine dir.
func quarantineEntries(t *testing.T, dataDir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dataDir, "quarantine"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, de := range entries {
		names = append(names, de.Name())
	}
	return names
}

// TestPeriodicCheckpointDuringRun is the SIGKILL acceptance scenario
// in-process: a converged result and a long run checkpointed by the
// background loop survive a crash image taken mid-run — the restarted
// daemon serves the converged result from the rehydrated cache and resumes
// the interrupted session with at most one checkpoint interval of sampling
// lost. Pinned by the CI race job: the in-run capture (engine-side flag
// service, sink write) runs concurrently with sampling and status reads.
func TestPeriodicCheckpointDuringRun(t *testing.T) {
	dataDir := t.TempDir()
	srvA, tsA := newTestServer(t, Config{DataDir: dataDir, CheckpointInterval: 25 * time.Millisecond})
	name := uploadGraph(t, tsA.URL, "web", testGraphBytes(t))

	// A quick converged run fills both cache tiers.
	warmParams := map[string]any{"graph": name, "eps": 0.1, "delta": 0.1, "seed": 9}
	warm := createSession(t, tsA.URL, warmParams)
	do(t, "POST", tsA.URL+"/sessions/"+warm+"/run", nil)
	if status := waitIdle(t, tsA.URL, warm); status["converged"] != true {
		t.Fatalf("warm session did not converge: %v", status)
	}

	// A long run for the background loop to checkpoint mid-flight.
	long := createSession(t, tsA.URL, map[string]any{"graph": name, "eps": 0.002, "delta": 0.1, "seed": 1})
	do(t, "POST", tsA.URL+"/sessions/"+long+"/run", nil)
	ckptPath := filepath.Join(dataDir, "sessions", long+".bck")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil && sessionTau(t, tsA.URL, long) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never checkpointed the running session")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Pull the plug: image the data dir mid-run, then stop the doomed
	// server without draining (its estimators never get to checkpoint at
	// completion into the image).
	// Image first, read tau second: sampling only moves forward, so any
	// checkpoint inside the image is at or behind the tau read afterwards.
	crashDir := copyDataDir(t, dataDir)
	tauAtKill := sessionTau(t, tsA.URL, long)
	srvA.cancelRuns()
	srvA.wg.Wait()
	tsA.Close()

	srvB, tsB := newTestServer(t, Config{DataDir: crashDir})

	// The interrupted session resumes behind, never ahead, of the kill
	// point: what survives is the last checkpoint.
	restored := sessionTau(t, tsB.URL, long)
	if restored <= 0 {
		t.Fatalf("restored session lost all samples (tau %v)", restored)
	}
	if restored > tauAtKill {
		t.Fatalf("restored tau %v exceeds tau at kill %v", restored, tauAtKill)
	}
	if code, _ := do(t, "POST", tsB.URL+"/sessions/"+long+"/run", nil); code != http.StatusAccepted {
		t.Fatal("resume after crash not accepted")
	}
	if status := waitIdle(t, tsB.URL, long); status["converged"] != true {
		t.Fatalf("resumed session did not converge: %v", status)
	}
	if tau := sessionTau(t, tsB.URL, long); tau <= restored {
		t.Fatalf("resume did not extend samples: %v -> %v", restored, tau)
	}

	// The converged result survived the crash: an identical query on the
	// restarted daemon is a cache hit served from the disk tier.
	repeat := createSession(t, tsB.URL, warmParams)
	do(t, "POST", tsB.URL+"/sessions/"+repeat+"/run", nil)
	if status := waitIdle(t, tsB.URL, repeat); status["cached"] != true {
		t.Fatalf("converged result did not survive the crash: %v", status)
	}
	_ = srvB
}

// TestCorruptionQuarantine seeds a data dir with every class of damage an
// unclean death can leave — truncated checkpoint envelope, bit-rotted CRC,
// zero-byte metadata, stale tmp file, corrupt cache entry — and asserts
// startup succeeds with each file quarantined and the damaged session
// served fresh.
func TestCorruptionQuarantine(t *testing.T) {
	cases := []struct {
		name string
		// damage mutates the healthy data dir; id is the checkpointed session.
		damage func(t *testing.T, dataDir, id string)
		// sessionFresh: the session must come back with zero samples.
		sessionFresh bool
		// sessionGone: the whole session was quarantined (404 after restart).
		sessionGone bool
	}{
		{
			name: "truncated checkpoint",
			damage: func(t *testing.T, dataDir, id string) {
				path := filepath.Join(dataDir, "sessions", id+".bck")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			sessionFresh: true,
		},
		{
			name: "checkpoint bad CRC",
			damage: func(t *testing.T, dataDir, id string) {
				path := filepath.Join(dataDir, "sessions", id+".bck")
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0xff
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			sessionFresh: true,
		},
		{
			name: "zero-byte session metadata",
			damage: func(t *testing.T, dataDir, id string) {
				if err := os.WriteFile(filepath.Join(dataDir, "sessions", id+".json"), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			sessionGone: true,
		},
		{
			name: "stale tmp file",
			damage: func(t *testing.T, dataDir, id string) {
				err := os.WriteFile(filepath.Join(dataDir, "sessions", id+".bck.tmp"), []byte("torn"), 0o644)
				if err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "corrupt cache entry",
			damage: func(t *testing.T, dataDir, id string) {
				entries, err := os.ReadDir(filepath.Join(dataDir, "cache"))
				if err != nil || len(entries) == 0 {
					t.Fatalf("no cache entries to corrupt: %v", err)
				}
				path := filepath.Join(dataDir, "cache", entries[0].Name())
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)-1] ^= 0xff
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dataDir := t.TempDir()
			srvA, err := New(Config{DataDir: dataDir})
			if err != nil {
				t.Fatal(err)
			}
			tsA := httptest.NewServer(srvA.Handler())
			name := uploadGraph(t, tsA.URL, "g", testGraphBytes(t))
			id := createSession(t, tsA.URL, map[string]any{"graph": name, "eps": 0.1, "seed": 3})
			do(t, "POST", tsA.URL+"/sessions/"+id+"/run", nil)
			if status := waitIdle(t, tsA.URL, id); status["converged"] != true {
				t.Fatalf("seed run did not converge: %v", status)
			}
			if err := srvA.Drain(t.Context()); err != nil {
				t.Fatal(err)
			}
			tsA.Close()

			tc.damage(t, dataDir, id)

			srvB, err := New(Config{DataDir: dataDir})
			if err != nil {
				t.Fatalf("startup over damaged data dir failed: %v", err)
			}
			tsB := httptest.NewServer(srvB.Handler())
			defer tsB.Close()

			if q := quarantineEntries(t, dataDir); len(q) == 0 {
				t.Fatal("damage was not quarantined")
			}
			code, status := do(t, "GET", tsB.URL+"/sessions/"+id, nil)
			switch {
			case tc.sessionGone:
				if code != http.StatusNotFound {
					t.Fatalf("quarantined session still served: status %d, %v", code, status)
				}
			case tc.sessionFresh:
				if code != http.StatusOK {
					t.Fatalf("session not served fresh: status %d", code)
				}
				if tau := status["snapshot"].(map[string]any)["tau"].(float64); tau != 0 {
					t.Fatalf("damaged-checkpoint session kept tau %v, want 0", tau)
				}
				if deg, _ := status["degraded"].(string); !strings.Contains(deg, "quarantined") {
					t.Fatalf("fresh-served session does not surface the quarantine: %v", status)
				}
			default:
				if code != http.StatusOK {
					t.Fatalf("healthy session lost: status %d", code)
				}
			}
			// Whatever happened, the daemon works: a fresh run converges.
			fresh := createSession(t, tsB.URL, map[string]any{"graph": name, "eps": 0.2, "seed": 8})
			do(t, "POST", tsB.URL+"/sessions/"+fresh+"/run", nil)
			if status := waitIdle(t, tsB.URL, fresh); status["converged"] != true {
				t.Fatalf("post-recovery run did not converge: %v", status)
			}
		})
	}
}

// TestCrashPointLeavesTmpQuarantined drives the injectable crash hook: die
// after the durable tmp write, before the rename. The write must fail with
// the simulated crash, the target file must be untouched, and the restart
// must quarantine the orphaned tmp file.
func TestCrashPointLeavesTmpQuarantined(t *testing.T) {
	dataDir := t.TempDir()
	srvA, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	name := uploadGraph(t, tsA.URL, "g", testGraphBytes(t))
	id := createSession(t, tsA.URL, map[string]any{"graph": name, "eps": 0.1, "seed": 4})
	do(t, "POST", tsA.URL+"/sessions/"+id+"/run", nil)
	waitIdle(t, tsA.URL, id)
	tsA.Close()

	// Arm the crash for the next checkpoint write of this session.
	crashBeforeRename = func(path string) bool {
		return filepath.Base(path) == id+".bck"
	}
	defer func() { crashBeforeRename = nil }()
	err = srvA.Drain(context.Background())
	crashBeforeRename = nil
	if !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("drain did not surface the simulated crash: %v", err)
	}

	tmpPath := filepath.Join(dataDir, "sessions", id+".bck.tmp")
	if _, err := os.Stat(tmpPath); err != nil {
		t.Fatalf("simulated crash left no tmp file: %v", err)
	}
	// The run's completion already checkpointed (checkpointAfterOp), so the
	// target file holds that earlier, complete envelope — a crash between
	// tmp write and rename never tears the target.
	ckptPath := filepath.Join(dataDir, "sessions", id+".bck")
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("crash before rename damaged the committed checkpoint: %v", err)
	}

	srvB, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatal("stale tmp file survived the recovery scan")
	}
	found := false
	for _, q := range quarantineEntries(t, dataDir) {
		if strings.HasPrefix(q, id+".bck.tmp") {
			found = true
		}
	}
	if !found {
		t.Fatal("stale tmp file was not quarantined")
	}
	// The committed checkpoint still restores: the session keeps its tau.
	if tau := sessionTau(t, tsB.URL, id); tau <= 0 {
		t.Fatalf("session lost its committed checkpoint: tau %v", tau)
	}
}

// TestWatchdogInterruptsRun pins the run watchdog: an over-budget run is
// cancelled server-side, reported interrupted (not failed), and the
// session resumes with its samples. Pinned by the CI race job: the
// watchdog cancellation races the sampling loop and the progress hook.
func TestWatchdogInterruptsRun(t *testing.T) {
	_, ts := newTestServer(t, Config{RunTimeout: 60 * time.Millisecond})
	name := uploadGraph(t, ts.URL, "g", testGraphBytes(t))
	id := createSession(t, ts.URL, map[string]any{"graph": name, "eps": 0.0005, "seed": 6})

	do(t, "POST", ts.URL+"/sessions/"+id+"/run", nil)
	status := waitIdle(t, ts.URL, id)
	if status["interrupted"] != true {
		t.Fatalf("watchdog did not interrupt the run: %v", status)
	}
	if reason, _ := status["interrupt_reason"].(string); !strings.Contains(reason, "watchdog") {
		t.Fatalf("interrupt reason does not name the watchdog: %v", status)
	}
	if status["error"] != nil {
		t.Fatalf("watchdog expiry reported as failure: %v", status)
	}
	tau0 := status["snapshot"].(map[string]any)["tau"].(float64)
	if tau0 <= 0 {
		t.Fatalf("interrupted session lost its samples: tau %v", tau0)
	}
	// Resumable: the next run picks up where the watchdog stopped it.
	if code, _ := do(t, "POST", ts.URL+"/sessions/"+id+"/run", nil); code != http.StatusAccepted {
		t.Fatal("resume after watchdog not accepted")
	}
	status = waitIdle(t, ts.URL, id)
	if tau := status["snapshot"].(map[string]any)["tau"].(float64); tau <= tau0 {
		t.Fatalf("resumed run did not extend samples: %v -> %v", tau0, tau)
	}
}

// TestShrinkOrDegrade pins the degradation ladder arithmetic.
func TestShrinkOrDegrade(t *testing.T) {
	p := sessionParams{Backend: "dist", Procs: 4}
	p, note, ok := shrinkOrDegrade(p)
	if !ok || p.Procs != 3 || p.Backend != "dist" || !strings.Contains(note, "3 ranks") {
		t.Fatalf("shrink from 4: %+v, %q, %v", p, note, ok)
	}
	p, _, ok = shrinkOrDegrade(p)
	if !ok || p.Procs != 2 {
		t.Fatalf("shrink from 3: %+v", p)
	}
	p, note, ok = shrinkOrDegrade(p)
	if !ok || p.Backend != "shm" || p.Procs != 0 || !strings.Contains(note, "shared-memory") {
		t.Fatalf("degrade from 2: %+v, %q", p, note)
	}
	if _, _, ok := shrinkOrDegrade(p); ok {
		t.Fatal("shm params reported degradable")
	}
	if _, _, ok := shrinkOrDegrade(sessionParams{Backend: "seq"}); ok {
		t.Fatal("seq params reported degradable")
	}
	p, _, ok = shrinkOrDegrade(sessionParams{Backend: "alg1", Procs: 2})
	if !ok || p.Backend != "shm" {
		t.Fatalf("alg1 degrade: %+v", p)
	}
}

// TestDistDeathClassification pins what the recovery ladder treats as a
// retryable distributed fatality.
func TestDistDeathClassification(t *testing.T) {
	if !isDistDeath(fmt.Errorf("run: %w", betweenness.ErrCoordinatorLost)) {
		t.Error("wrapped coordinator loss not classified as dist death")
	}
	if isDistDeath(errors.New("plain failure")) {
		t.Error("plain error classified as dist death")
	}
	if isDistDeath(context.Canceled) {
		t.Error("cancellation classified as dist death")
	}
}

// TestDistRecoveryRebuild drives the ladder's rebuild step directly: a
// dist session rebuilt onto shm params runs to convergence on the new
// backend, with the swap surfaced in the session status.
func TestDistRecoveryRebuild(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	name := uploadGraph(t, ts.URL, "g", testGraphBytes(t))
	id := createSession(t, ts.URL, map[string]any{"graph": name, "eps": 0.1, "seed": 5, "backend": "dist", "procs": 2})

	srv.mu.Lock()
	s := srv.sessions[id]
	srv.mu.Unlock()

	p, note, ok := shrinkOrDegrade(s.currentParams())
	if !ok {
		t.Fatal("dist session not degradable")
	}
	s.noteDegraded(note)
	if err := s.rebuild(p); err != nil {
		t.Fatalf("rebuild: %v", err)
	}

	do(t, "POST", ts.URL+"/sessions/"+id+"/run", nil)
	status := waitIdle(t, ts.URL, id)
	if status["converged"] != true {
		t.Fatalf("rebuilt session did not converge: %v", status)
	}
	if status["backend"] != "shm" {
		t.Fatalf("rebuilt session backend = %v, want shm", status["backend"])
	}
	if deg, _ := status["degraded"].(string); !strings.Contains(deg, "shared-memory") {
		t.Fatalf("degradation not surfaced: %v", status)
	}
}

// TestPagination covers the ?offset=&limit= windows on both estimate
// surfaces.
func TestPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	name := uploadGraph(t, ts.URL, "g", testGraphBytes(t))
	id := createSession(t, ts.URL, map[string]any{"graph": name, "eps": 0.1, "seed": 2})
	do(t, "POST", ts.URL+"/sessions/"+id+"/run", nil)
	waitIdle(t, ts.URL, id)

	// Unpaginated result stays backward compatible: full vector, no window
	// metadata.
	_, full := do(t, "GET", ts.URL+"/sessions/"+id+"/result?estimates=1", nil)
	n := len(full["estimates"].([]any))
	if n == 0 {
		t.Fatal("no estimates")
	}
	if _, windowed := full["total"]; windowed {
		t.Fatal("unpaginated result carries window metadata")
	}

	code, page := do(t, "GET", ts.URL+"/sessions/"+id+"/result?estimates=1&offset=5&limit=7", nil)
	if code != http.StatusOK {
		t.Fatalf("paged result: status %d", code)
	}
	if got := len(page["estimates"].([]any)); got != 7 {
		t.Fatalf("page length = %d, want 7", got)
	}
	if page["total"].(float64) != float64(n) || page["offset"].(float64) != 5 {
		t.Fatalf("window metadata wrong: %v", page)
	}
	if page["estimates"].([]any)[0] != full["estimates"].([]any)[5] {
		t.Fatal("page content does not match the full vector")
	}

	// The live estimates endpoint.
	code, live := do(t, "GET", ts.URL+"/sessions/"+id+"/estimates?offset="+fmt.Sprint(n-3)+"&limit=100", nil)
	if code != http.StatusOK {
		t.Fatalf("estimates: status %d", code)
	}
	if got := len(live["estimates"].([]any)); got != 3 {
		t.Fatalf("tail page length = %d, want 3 (clamped)", got)
	}
	if live["total"].(float64) != float64(n) {
		t.Fatalf("estimates total = %v, want %d", live["total"], n)
	}

	// Out-of-range and garbage windows.
	if code, resp := do(t, "GET", ts.URL+"/sessions/"+id+"/estimates?offset=999999", nil); code != http.StatusOK || len(resp["estimates"].([]any)) != 0 {
		t.Fatalf("past-the-end offset: status %d, %v", code, resp)
	}
	if code, _ := do(t, "GET", ts.URL+"/sessions/"+id+"/estimates?offset=-1", nil); code != http.StatusBadRequest {
		t.Errorf("negative offset accepted: %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/sessions/"+id+"/result?estimates=1&limit=x", nil); code != http.StatusBadRequest {
		t.Errorf("garbage limit accepted: %d", code)
	}
}

// TestHealthAndReadiness: liveness is unconditional; readiness drops the
// moment a drain begins.
func TestHealthAndReadiness(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if code, _ := do(t, "GET", ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	if err := srv.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if code, _ := do(t, "GET", ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200 (liveness is unconditional)", code)
	}
}

// TestDiskCacheEviction pins the disk tier's byte budget: spilling past it
// evicts oldest-first, and the survivors rehydrate.
func TestDiskCacheEviction(t *testing.T) {
	dir := t.TempDir()
	mkRes := func(seed int) *betweenness.Result {
		return &betweenness.Result{
			Estimates: make([]float64, 512),
			Tau:       int64(seed),
			Converged: true,
			Backend:   "sequential",
		}
	}
	oneSize := func() int64 {
		data, err := encodeCacheEntry("probe", mkRes(1))
		if err != nil {
			t.Fatal(err)
		}
		return int64(len(data))
	}()

	c := newResultCache(8, dir, 3*oneSize+oneSize/2, nil)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("key-%d", i), mkRes(i))
	}
	_, _, _, diskEntries, diskBytes := c.stats()
	if diskEntries != 3 || diskBytes > 3*oneSize+oneSize/2 {
		t.Fatalf("disk tier not bounded: %d entries, %d bytes (budget %d)", diskEntries, diskBytes, 3*oneSize+oneSize/2)
	}
	// The newest entries survived.
	for i := 2; i < 5; i++ {
		if _, ok := c.get(fmt.Sprintf("key-%d", i)); !ok {
			t.Errorf("recent key-%d evicted", i)
		}
	}

	// A fresh cache rehydrates the survivors from disk alone.
	c2 := newResultCache(8, dir, 10*oneSize, nil)
	c2.rehydrate(func(path, reason string) { t.Fatalf("healthy entry quarantined: %s (%s)", path, reason) })
	for i := 2; i < 5; i++ {
		res, ok := c2.get(fmt.Sprintf("key-%d", i))
		if !ok || res.Tau != int64(i) {
			t.Errorf("key-%d did not rehydrate (ok=%v)", i, ok)
		}
	}
}

// TestCacheEntryRoundTrip pins the BCRE envelope: encode/decode is
// lossless and every corruption fails loudly.
func TestCacheEntryRoundTrip(t *testing.T) {
	res := &betweenness.Result{
		Estimates:   []float64{0.25, 0.5, 0},
		Tau:         1234,
		AchievedEps: 0.01,
		Converged:   true,
		Backend:     "sequential",
	}
	data, err := encodeCacheEntry("some|key", res)
	if err != nil {
		t.Fatal(err)
	}
	key, got, err := decodeCacheEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if key != "some|key" || got.Tau != 1234 || len(got.Estimates) != 3 || got.Estimates[1] != 0.5 {
		t.Fatalf("round trip lost data: %q, %+v", key, got)
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)/2] },                             // truncation
		func(b []byte) []byte { b[len(b)/2] ^= 1; return b },                      // bit rot
		func(b []byte) []byte { b[0] = 'X'; return b },                            // bad magic
		func(b []byte) []byte { return nil },                                      // empty
		func(b []byte) []byte { return append([]byte("BCRE\x09\x00"), b[6:]...) }, // version skew
	} {
		bad := mutate(append([]byte(nil), data...))
		if _, _, err := decodeCacheEntry(bad); err == nil {
			t.Error("corrupted entry decoded without error")
		}
	}
}
