package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/graph"
)

// The service-tier benchmarks tracked by scripts/bench.sh: end-to-end
// session throughput (create + run + result over HTTP) and the latency of
// a status poll against a session that is actively sampling. Both ride the
// sequential backend on a small RMAT graph, so the numbers measure the
// service layer, not the sampler.

func benchServer(b *testing.B) (string, string) {
	b.Helper()
	g := graph.RMAT(graph.Graph500(8, 8, 17))
	g, _, err := graph.LargestComponent(g)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{MaxConcurrentRuns: 2})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/graphs?name=bench", "application/octet-stream", &buf)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("upload: status %d", resp.StatusCode)
	}
	return ts.URL, "bench"
}

func benchPost(b *testing.B, url string, body []byte) map[string]any {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	return out
}

func benchGet(b *testing.B, url string) map[string]any {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	return out
}

func benchWaitIdle(b *testing.B, base, id string) map[string]any {
	b.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		status := benchGet(b, base+"/sessions/"+id)
		if status["state"] == stateIdle {
			return status
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatalf("session %s never idled", id)
	return nil
}

// BenchmarkServerSession measures the full session lifecycle. The fresh
// variant uses a distinct seed per iteration (every run samples); the
// cached variant repeats one identical query (after the first iteration,
// every run is a cache hit — the service-overhead floor).
func BenchmarkServerSession(b *testing.B) {
	for _, mode := range []string{"fresh", "cached"} {
		b.Run(mode, func(b *testing.B) {
			base, name := benchServer(b)
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := 1000
				if mode == "fresh" {
					seed += i
				}
				body := fmt.Sprintf(`{"graph":%q,"eps":0.1,"delta":0.1,"seed":%d}`, name, seed)
				created := benchPost(b, base+"/sessions", []byte(body))
				id := created["id"].(string)
				benchPost(b, base+"/sessions/"+id+"/run", nil)
				if status := benchWaitIdle(b, base, id); status["converged"] != true {
					b.Fatalf("session %s did not converge", id)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "sessions/s")
		})
	}
}

// BenchmarkServerSnapshot measures GET /sessions/{id} latency while the
// session is actively sampling — the status-poll path a dashboard hits.
func BenchmarkServerSnapshot(b *testing.B) {
	base, name := benchServer(b)
	body := fmt.Sprintf(`{"graph":%q,"eps":0.0005,"delta":0.1,"seed":1}`, name)
	created := benchPost(b, base+"/sessions", []byte(body))
	id := created["id"].(string)
	benchPost(b, base+"/sessions/"+id+"/run", nil)
	// Let the run reach steady-state sampling before timing the polls.
	deadline := time.Now().Add(30 * time.Second)
	for {
		status := benchGet(b, base+"/sessions/"+id)
		if snap, ok := status["snapshot"].(map[string]any); ok && snap["tau"].(float64) > 0 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("run never started sampling")
		}
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, base+"/sessions/"+id)
	}
	b.StopTimer()
}
