package kadabra

import (
	"context"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// resultsBitIdentical compares everything except wall-clock timings.
func resultsBitIdentical(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.Tau != b.Tau {
		t.Fatalf("%s: tau %d vs %d", label, a.Tau, b.Tau)
	}
	if a.Epochs != b.Epochs {
		t.Fatalf("%s: epochs %d vs %d", label, a.Epochs, b.Epochs)
	}
	if a.Omega != b.Omega || a.VertexDiameter != b.VertexDiameter {
		t.Fatalf("%s: omega/vd differ: %f/%d vs %f/%d",
			label, a.Omega, a.VertexDiameter, b.Omega, b.VertexDiameter)
	}
	if a.AchievedEps != b.AchievedEps {
		t.Fatalf("%s: achieved eps %g vs %g", label, a.AchievedEps, b.AchievedEps)
	}
	if a.Converged != b.Converged {
		t.Fatalf("%s: converged %v vs %v", label, a.Converged, b.Converged)
	}
	for v := range a.Betweenness {
		if a.Betweenness[v] != b.Betweenness[v] {
			t.Fatalf("%s: estimates differ at vertex %d: %g vs %g",
				label, v, a.Betweenness[v], b.Betweenness[v])
		}
	}
}

// TestEstimatorStateBitIdenticalResume is the core checkpoint guarantee: a
// sequential run stopped mid-sampling by a sample budget, checkpointed,
// restored into a fresh state machine, and run to completion produces a
// bit-identical Result to an uninterrupted run — in both the dense-frame
// and sparse-frame representations.
func TestEstimatorStateBitIdenticalResume(t *testing.T) {
	g := testGraph()
	for _, dense := range []bool{true, false} {
		name := "sparse"
		if dense {
			name = "dense"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{Eps: 0.03, Delta: 0.1, Seed: 11, DenseFrames: dense}
			w := UndirectedWorkload(g)

			full, err := NewEstimatorState(w, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := full.Run(context.Background(), Budget{}); err != nil {
				t.Fatal(err)
			}
			want := full.Result()
			if !want.Converged {
				t.Fatal("uninterrupted run did not converge")
			}

			// Interrupt at several points, including mid-calibration and
			// off-CheckInterval-boundary taus.
			for _, cut := range []int64{50, want.Tau / 3, want.Tau/2 + 137} {
				st, err := NewEstimatorState(w, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.Run(context.Background(), Budget{MaxSamples: cut}); err != nil {
					t.Fatal(err)
				}
				if st.Tau() != cut {
					t.Fatalf("cut %d: budget stop at tau %d", cut, st.Tau())
				}
				if st.Converged() {
					t.Fatalf("cut %d: converged at the budget stop", cut)
				}
				ckpt := st.AppendCheckpoint(nil)
				restored, err := RestoreEstimatorState(ckpt, UndirectedWorkload(g))
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				if err := restored.Run(context.Background(), Budget{}); err != nil {
					t.Fatal(err)
				}
				resultsBitIdentical(t, want, restored.Result(), name)
			}
		})
	}
}

// TestEstimatorStateRepeatedRunsIdentical: pausing and resuming through
// many small budgets (without serialization) walks the exact path of one
// uninterrupted run.
func TestEstimatorStateRepeatedRunsIdentical(t *testing.T) {
	g := testGraph()
	cfg := Config{Eps: 0.05, Delta: 0.1, Seed: 3}
	full, err := NewEstimatorState(UndirectedWorkload(g), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Run(context.Background(), Budget{}); err != nil {
		t.Fatal(err)
	}
	want := full.Result()

	st, err := NewEstimatorState(UndirectedWorkload(g), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(400); !st.Converged(); step += 400 {
		if err := st.Run(context.Background(), Budget{MaxSamples: step}); err != nil {
			t.Fatal(err)
		}
	}
	resultsBitIdentical(t, want, st.Result(), "stepped")
}

// TestEstimatorStateShmCheckpointResume: a shared-memory session paused
// mid-calibration by a sample budget (where the overshoot is bounded per
// worker regardless of scheduling — an adaptive-phase epoch's size scales
// with wall time on an oversubscribed box), checkpointed, restored, and
// run to completion grows its sample count and still satisfies the
// guarantee vs Brandes. Bit-identity is a sequential-only promise — the
// epoch overlap is schedule-dependent.
func TestEstimatorStateShmCheckpointResume(t *testing.T) {
	g := testGraph()
	const eps = 0.02
	const threads = 3
	cfg := Config{Eps: eps, Delta: 0.1, Seed: 9}
	st, err := NewEstimatorState(UndirectedWorkload(g), threads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tau0 := int64(st.Omega())/100 + 1
	pauseAt := tau0 / 2
	if err := st.Run(context.Background(), Budget{MaxSamples: pauseAt}); err != nil {
		t.Fatal(err)
	}
	if st.Calibrated() || st.Converged() {
		t.Fatalf("budget %d (< tau0 %d) did not pause mid-calibration", pauseAt, tau0)
	}
	paused := st.Tau()
	if paused < pauseAt || paused > pauseAt+threads {
		t.Fatalf("mid-calibration pause at tau %d, want within [%d, %d]", paused, pauseAt, pauseAt+threads)
	}
	ckpt := st.AppendCheckpoint(nil)

	restored, err := RestoreEstimatorState(ckpt, UndirectedWorkload(g))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Threads() != threads {
		t.Fatalf("restored thread count %d, want %d", restored.Threads(), threads)
	}
	if restored.Tau() != paused {
		t.Fatalf("restored tau %d, want %d", restored.Tau(), paused)
	}
	if err := restored.Run(context.Background(), Budget{}); err != nil {
		t.Fatal(err)
	}
	res := restored.Result()
	if res.Tau <= paused {
		t.Fatalf("resumed run did not sample: tau %d vs paused %d", res.Tau, paused)
	}
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}
	guaranteeCheck(t, g, res, eps)
}

// TestEstimatorStateRecalibrateKeepsSamples: refining to a tighter eps
// strictly grows tau (never resets) and the refined state satisfies the
// tighter guarantee.
func TestEstimatorStateRecalibrateKeepsSamples(t *testing.T) {
	g := testGraph()
	st, err := NewEstimatorState(UndirectedWorkload(g), 0, Config{Eps: 0.1, Delta: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Run(context.Background(), Budget{}); err != nil {
		t.Fatal(err)
	}
	coarse := st.Tau()
	if !st.Converged() {
		t.Fatal("coarse run did not converge")
	}
	st.Recalibrate(0.03, 0.1)
	if st.Converged() {
		t.Fatal("recalibration did not reset convergence")
	}
	if st.Tau() != coarse {
		t.Fatalf("recalibration changed tau: %d vs %d", st.Tau(), coarse)
	}
	if err := st.Run(context.Background(), Budget{}); err != nil {
		t.Fatal(err)
	}
	res := st.Result()
	if res.Tau <= coarse {
		t.Fatalf("refinement did not grow tau: %d vs %d", res.Tau, coarse)
	}
	if res.AchievedEps > 0.03 {
		t.Fatalf("refined achieved eps %g exceeds target 0.03", res.AchievedEps)
	}
	guaranteeCheck(t, g, res, 0.03)
}

// TestEstimatorStateBudgets: the sample budget stops at exactly the cap
// (sequential engine), the deadline budget returns promptly, and both
// leave an honest achieved-eps behind.
func TestEstimatorStateBudgets(t *testing.T) {
	g := testGraph()
	st, err := NewEstimatorState(UndirectedWorkload(g), 0, Config{Eps: 0.005, Delta: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Run(context.Background(), Budget{MaxSamples: 2000}); err != nil {
		t.Fatal(err)
	}
	if st.Tau() != 2000 {
		t.Fatalf("sequential sample budget stopped at tau %d, want exactly 2000", st.Tau())
	}
	res := st.Result()
	if res.Converged {
		t.Fatal("budget-stopped run reported convergence")
	}
	if res.AchievedEps <= 0.005 || res.AchievedEps > 1 {
		t.Fatalf("implausible achieved eps %g after 2000 samples at target 0.005", res.AchievedEps)
	}

	begin := time.Now()
	if err := st.Run(context.Background(), Budget{Deadline: time.Now().Add(150 * time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("deadline-budgeted run took %v", elapsed)
	}
	if st.Tau() <= 2000 {
		t.Fatal("deadline run did not advance the state")
	}
	after := st.Result().AchievedEps
	if after >= res.AchievedEps {
		t.Fatalf("achieved eps did not tighten: %g -> %g", res.AchievedEps, after)
	}
}

// TestRestoreEstimatorStateRejectsGarbage: structural validation of the
// internal payload (the public envelope adds magic + CRC on top).
func TestRestoreEstimatorStateRejectsGarbage(t *testing.T) {
	g := testGraph()
	w := UndirectedWorkload(g)
	st, err := NewEstimatorState(w, 0, Config{Eps: 0.05, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Run(context.Background(), Budget{MaxSamples: 500}); err != nil {
		t.Fatal(err)
	}
	valid := st.AppendCheckpoint(nil)

	if _, err := RestoreEstimatorState(valid, w); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	for _, cut := range []int{0, 1, 2, 7, len(valid) / 2, len(valid) - 1} {
		if _, err := RestoreEstimatorState(valid[:cut], w); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := RestoreEstimatorState(append(valid[:len(valid):len(valid)], 0xFF), w); err == nil {
		t.Error("trailing garbage accepted")
	}
	versionSkew := append([]byte(nil), valid...)
	versionSkew[0] = 0xFE
	if _, err := RestoreEstimatorState(versionSkew, w); err == nil {
		t.Error("version skew accepted")
	}
	// A checkpoint over a different vertex count must not bind.
	smaller, _ := graph.LargestComponent(gen.RMAT(gen.Graph500(7, 8, 17)))
	if _, err := RestoreEstimatorState(valid, UndirectedWorkload(smaller)); err == nil {
		t.Error("vertex-count mismatch accepted")
	}
}
