package kadabra

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
)

// Config collects the parameters shared by every KADABRA variant in this
// repository (sequential, shared-memory, and the MPI algorithms built on
// top in internal/core).
type Config struct {
	// Eps is the absolute approximation error (paper: 0.001 for the main
	// experiments; smaller values sharply increase running time).
	Eps float64
	// Delta is the failure probability (paper: 0.1).
	Delta float64
	// Seed makes runs reproducible; worker streams are split from it.
	Seed uint64
	// StartFactor controls the number of calibration samples:
	// tau0 = omega/StartFactor (default 100, as in the original code).
	StartFactor int
	// CheckInterval is the number of samples between stopping-condition
	// checks in the sequential algorithm (default 1000). Parallel variants
	// use epochs instead (see EpochBase).
	CheckInterval int
	// EpochBase and EpochSkew set the epoch length for parallel variants:
	// thread 0 takes n0 = EpochBase / W^EpochSkew samples per epoch, where W
	// is the total number of sampling threads (P*T in the distributed
	// setting). The paper (§IV-D) decreases the epoch length as workers are
	// added because every worker keeps sampling during the epoch; defaults
	// EpochBase=1000, EpochSkew=0.33.
	EpochBase float64
	EpochSkew float64
	// VertexDiameter, when positive, skips the diameter phase and uses the
	// given value (useful when the caller has computed it already, and for
	// the virtual-cluster harness which charges the phase separately).
	VertexDiameter int
	// DiameterBFSCap bounds the number of BFS sweeps iFUB may spend
	// (0 = exact). The paper uses a sequential diameter algorithm whose
	// cost shows up in Fig. 2b; the cap trades tightness for speed.
	DiameterBFSCap int
	// OnEpoch, when non-nil, is invoked after every epoch aggregation
	// (SharedMemory) or stopping check (Sequential) with a consistent
	// Progress observation. It runs on the coordinator thread between the
	// stopping check and the next epoch, so it must be cheap; it exists
	// for progress reporting and convergence tracing. Registering it makes
	// every epoch pay the O(n) achieved-eps sweep on top of the amortized
	// O(1) stopping check.
	OnEpoch func(Progress)
	// MaxSamples, when positive, is a sampling budget: the run stops once
	// the consistent sample count tau reaches it, even if the adaptive
	// stopping rule has not been satisfied. The result then carries
	// Converged == false and reports the guarantee actually achieved in
	// AchievedEps.
	MaxSamples int64
	// MaxDuration, when positive, is a wall-clock budget for one driver
	// call, measured from its entry (so it covers the diameter and
	// calibration phases too). The sampling loops stop within one epoch
	// (one deadline-check batch, for the sequential driver) of the
	// deadline and report the achieved guarantee, like MaxSamples.
	MaxDuration time.Duration
	// DenseFrames disables the sparse touched-vertex tracking in the epoch
	// state frames (and, on the MPI backends, ships classic dense wire
	// frames). It reproduces the pre-sparse behavior bit for bit and exists
	// for the dense-vs-sparse equivalence tests and as an ablation; leave
	// it off otherwise.
	DenseFrames bool
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Eps == 0 {
		c.Eps = 0.01
	}
	if c.Delta == 0 {
		c.Delta = 0.1
	}
	if c.StartFactor == 0 {
		c.StartFactor = 100
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 1000
	}
	if c.EpochBase == 0 {
		c.EpochBase = 1000
	}
	if c.EpochSkew == 0 {
		c.EpochSkew = 0.33
	}
	return c
}

// EpochLength returns n0 for a run with totalWorkers sampling threads,
// clamped below at 16 samples so epochs never degenerate.
func (c Config) EpochLength(totalWorkers int) int {
	cfg := c.withDefaults()
	n0 := cfg.EpochBase / math.Pow(float64(totalWorkers), cfg.EpochSkew)
	if n0 < 16 {
		n0 = 16
	}
	return int(n0)
}

// Progress is one consistent observation of a running estimate, delivered
// to Config.OnEpoch after every epoch (or stopping check, for the
// sequential driver) and by the anytime estimator's Snapshot.
type Progress struct {
	// Epoch is the 1-based index of the completed epoch (stopping check).
	Epoch int
	// Tau is the number of samples in the consistent aggregated state.
	Tau int64
	// AchievedEps is the anytime guarantee currently held: with
	// probability 1-delta, every estimate is within AchievedEps of the
	// truth. It is 1 (vacuous) before calibration and tightens toward the
	// target eps as sampling proceeds.
	AchievedEps float64
	// SamplesPerSec is the observed sampling throughput, averaged over the
	// calibration and adaptive phases so far.
	SamplesPerSec float64
}

// Budget bounds one EstimatorState.Run call: an absolute cap on the
// consistent sample count tau, plus a wall-clock deadline. The zero value
// means unbounded. A budget-stopped run leaves the state consistent and
// resumable; the result reports the guarantee actually achieved.
type Budget struct {
	// MaxSamples, when positive, stops the run once tau reaches it. The
	// sequential engine stops at exactly this tau; the epoch-based engines
	// may overshoot by up to one epoch (one calibration share per thread).
	MaxSamples int64
	// Deadline, when non-zero, stops the run once the wall clock passes
	// it, within one epoch (one deadline-check batch, sequentially).
	Deadline time.Time
}

// NewBudget resolves the Config budget fields against a start instant.
func (c Config) NewBudget(start time.Time) Budget {
	b := Budget{MaxSamples: c.MaxSamples}
	if c.MaxDuration > 0 {
		b.Deadline = start.Add(c.MaxDuration)
	}
	return b
}

// Exceeded reports whether the budget has run out at the given tau.
func (b Budget) Exceeded(tau int64) bool {
	if b.MaxSamples > 0 && tau >= b.MaxSamples {
		return true
	}
	return b.Overdue()
}

// Overdue reports whether the wall-clock deadline has passed.
func (b Budget) Overdue() bool {
	return !b.Deadline.IsZero() && !time.Now().Before(b.Deadline)
}

// Timings records wall-clock time per phase, the raw material of the
// paper's Figure 2b breakdown.
type Timings struct {
	Diameter    time.Duration
	Calibration time.Duration
	Sampling    time.Duration // adaptive sampling phase, total
	// Within the sampling phase (parallel variants only):
	Transition time.Duration // waiting for epoch transitions (overlapped)
	Barrier    time.Duration // non-blocking barrier waits (overlapped)
	Reduce     time.Duration // blocking aggregation (not overlapped)
	Check      time.Duration // stopping-condition evaluation
}

// Total returns the end-to-end duration.
func (t Timings) Total() time.Duration {
	return t.Diameter + t.Calibration + t.Sampling
}

// Result is the output of every KADABRA variant.
type Result struct {
	// Betweenness holds btilde(x) = ctilde(x)/tau for every vertex.
	Betweenness []float64
	// Tau is the number of samples in the final consistent state.
	Tau int64
	// Omega is the static maximal sample count.
	Omega float64
	// VertexDiameter is the value used for omega.
	VertexDiameter int
	// Epochs is the number of completed epochs (parallel variants; the
	// sequential algorithm reports the number of stopping checks).
	Epochs int
	// AchievedEps is the guarantee actually achieved: with probability
	// 1-delta every estimate is within AchievedEps of the truth. It is at
	// most the target eps when Converged, and the honest (looser) anytime
	// bound when a budget stopped the run early.
	AchievedEps float64
	// Converged reports whether the adaptive stopping rule was satisfied
	// (or tau reached omega); false means a sampling budget ended the run
	// before the target eps was reached.
	Converged bool
	// Timings is the per-phase wall-clock breakdown.
	Timings Timings
}

// TopK returns the k vertices with the highest approximate betweenness, in
// descending order. With eps chosen below the k-th betweenness value gap,
// these are reliable with probability 1-delta (the use case motivating the
// paper's push to eps = 0.001).
func (r *Result) TopK(k int) []graph.Node {
	idx := make([]graph.Node, len(r.Betweenness))
	for i := range idx {
		idx[i] = graph.Node(i)
	}
	sortByScoreDesc(idx, r.Betweenness)
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func sortByScoreDesc(idx []graph.Node, scores []float64) {
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
}

// resolveVertexDiameter runs phase 1 (or uses the precomputed override);
// the override/cap/timing logic lives in Workload.ResolveDiameter so the
// workload-based and classic entry points cannot drift apart.
func resolveVertexDiameter(g *graph.Graph, cfg Config) (int, time.Duration) {
	return UndirectedWorkload(g).ResolveDiameter(cfg)
}

// validate rejects graphs the estimator cannot work with.
func validate(g *graph.Graph) error {
	if g.NumNodes() < 2 {
		return fmt.Errorf("kadabra: need at least 2 vertices, got %d", g.NumNodes())
	}
	return nil
}
