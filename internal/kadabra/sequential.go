package kadabra

import (
	"context"
	"time"

	"repro/internal/graph"
)

// Sequential runs the plain (single-threaded) KADABRA algorithm. It is the
// reference implementation: the parallel variants must produce statistically
// identical results, and the tests validate the (eps, delta) guarantee
// against Brandes on this version.
//
// The context is checked between sample batches; when it is cancelled the
// run stops within one CheckInterval and returns ctx.Err().
func Sequential(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	return runSequential(ctx, UndirectedWorkload(g), cfg)
}

// runSequential is the one-shot wrapper over the sequential engine of the
// anytime estimator state machine (estimator.go): build the session, run it
// to completion (or to the Config budget), and materialize the result. The
// statistical machinery (omega, calibration, the adaptive stopping rule),
// cancellation, budgets, and the OnEpoch hook all live in the machine, so
// one-shot runs and resumable sessions are the same code path sample for
// sample.
func runSequential(ctx context.Context, w Workload, cfg Config) (*Result, error) {
	start := time.Now()
	st, err := NewEstimatorState(w, 0, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := st.Run(ctx, cfg.NewBudget(start)); err != nil {
		return nil, err
	}
	return st.Result(), nil
}
