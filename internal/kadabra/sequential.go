package kadabra

import (
	"context"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Sequential runs the plain (single-threaded) KADABRA algorithm. It is the
// reference implementation: the parallel variants must produce statistically
// identical results, and the tests validate the (eps, delta) guarantee
// against Brandes on this version.
//
// The context is checked between sample batches; when it is cancelled the
// run stops within one CheckInterval and returns ctx.Err().
func Sequential(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	return runSequential(ctx, UndirectedWorkload(g), cfg)
}

// runSequential is the generic single-threaded driver shared by the
// undirected, directed, and weighted scenarios: only the sampling kernel and
// the phase-1 bound differ per workload; the statistical machinery (omega,
// calibration, the adaptive stopping rule), cancellation, and the OnEpoch
// hook are workload-agnostic.
func runSequential(ctx context.Context, w Workload, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := w.n

	// Phase 1: diameter -> omega.
	vd, diamTime := w.ResolveDiameter(cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	omega := Omega(vd, cfg.Eps, cfg.Delta)

	sampler := w.newSampler(rng.NewRand(cfg.Seed))
	// The accumulated state S: sparse-tracked until it naturally passes the
	// density cutover (a long run touches most vertices eventually).
	S := newStateFrame(n, cfg)

	// Phase 2: calibration with tau0 = omega/StartFactor non-adaptive
	// samples. The samples are kept in the running state, as in the
	// original algorithm.
	calStart := time.Now()
	tau0 := int64(omega)/int64(cfg.StartFactor) + 1
	for S.Tau < tau0 {
		if S.Tau%int64(cfg.CheckInterval) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		SampleInto(sampler, S)
	}
	cal := Calibrate(S.C, S.Tau, omega, cfg.Eps, cfg.Delta)
	calTime := time.Since(calStart)

	// Phase 3: adaptive sampling.
	samplingStart := time.Now()
	checks := 0
	var checkTime time.Duration
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs := time.Now()
		stop := cal.HaveToStop(S.C, S.Tau)
		checkTime += time.Since(cs)
		checks++
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(checks, S.Tau)
		}
		if stop {
			break
		}
		for i := 0; i < cfg.CheckInterval && float64(S.Tau) < omega; i++ {
			SampleInto(sampler, S)
		}
	}
	samplingTime := time.Since(samplingStart)

	bt := make([]float64, n)
	for v, c := range S.C {
		bt[v] = float64(c) / float64(S.Tau)
	}
	return &Result{
		Betweenness:    bt,
		Tau:            S.Tau,
		Omega:          omega,
		VertexDiameter: vd,
		Epochs:         checks,
		Timings: Timings{
			Diameter:    diamTime,
			Calibration: calTime,
			Sampling:    samplingTime,
			Check:       checkTime,
		},
	}, nil
}
