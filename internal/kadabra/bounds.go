// Package kadabra implements the KADABRA adaptive-sampling algorithm for
// betweenness approximation (Borassi & Natale, ESA 2016), the sampling
// algorithm underlying the paper's parallelizations.
//
// The algorithm proceeds in the three phases of paper §III-A:
//
//  1. Diameter computation, yielding the maximal sample count omega.
//  2. Calibration: a fixed number of non-adaptive samples from which the
//     per-vertex failure budgets deltaL(v), deltaU(v) are derived.
//  3. Adaptive sampling until the stopping condition holds for all vertices
//     (or tau reaches omega).
//
// The guarantee is the one stated in the paper's introduction: with
// probability at least 1-delta, |btilde(x) - b(x)| <= eps simultaneously for
// all vertices x.
//
// This file contains the statistical machinery: omega, the Chernoff-style
// error bound functions f and g of §III-A, and the deltaL/deltaU
// calibration. The exact calibration heuristic only influences running time,
// never correctness (paper footnote 2); ours equalizes the predicted
// per-vertex finishing times subject to sum(deltaL+deltaU) <= delta/2, the
// same structure as the original implementation.
package kadabra

import (
	"math"
	"sort"
)

// universalC is the constant c in the omega formula. Borassi & Natale show
// experimentally that 0.5 is valid (the theoretical constant is larger).
const universalC = 0.5

// Omega returns the statically computed maximal number of samples
//
//	omega = c/eps^2 * (floor(log2(VD-2)) + 1 + ln(2/delta))
//
// where VD is the vertex diameter (paper §III-A). Sampling can always stop
// at omega samples: by the Riondato–Kornaropoulos VC bound, omega samples
// suffice for an eps-approximation with probability 1-delta/2.
func Omega(vertexDiameter int, eps, delta float64) float64 {
	if eps <= 0 || eps >= 1 {
		panic("kadabra: eps must be in (0,1)")
	}
	if delta <= 0 || delta >= 1 {
		panic("kadabra: delta must be in (0,1)")
	}
	logDiam := 0.0
	if vertexDiameter > 3 {
		logDiam = math.Floor(math.Log2(float64(vertexDiameter - 2)))
	}
	return universalC / (eps * eps) * (logDiam + 1 + math.Log(2/delta))
}

// FBound is the upper error bound function f(btilde, deltaL, omega, tau) of
// §III-A: with probability at least 1-deltaL, b(x) >= btilde(x) - f. It is
// the empirical-Bernstein-style bound of the KADABRA paper; the returned
// value is clamped to btilde (the error can never exceed the estimate
// itself, since b >= 0).
func FBound(btilde float64, deltaL, omega float64, tau int64) float64 {
	if tau <= 0 {
		return btilde
	}
	return fBoundLog(btilde, math.Log(1/deltaL), omega, tau)
}

// fBoundLog is FBound with log(1/deltaL) precomputed — the stopping check
// evaluates the bounds once per vertex per epoch, and the log is the single
// most expensive term, so Calibrate caches it per vertex.
func fBoundLog(btilde, logD, omega float64, tau int64) float64 {
	ft := float64(tau)
	tmp := omega/ft - 1.0/3
	errChern := logD / ft * (-tmp + math.Sqrt(tmp*tmp+2*btilde*omega/logD))
	return math.Min(errChern, btilde)
}

// GBound is the lower error bound function g(btilde, deltaU, omega, tau):
// with probability at least 1-deltaU, b(x) <= btilde(x) + g. Clamped to
// 1 - btilde.
func GBound(btilde float64, deltaU, omega float64, tau int64) float64 {
	if tau <= 0 {
		return 1 - btilde
	}
	return gBoundLog(btilde, math.Log(1/deltaU), omega, tau)
}

// gBoundLog is GBound with log(1/deltaU) precomputed.
func gBoundLog(btilde, logD, omega float64, tau int64) float64 {
	ft := float64(tau)
	tmp := omega/ft + 1.0/3
	errChern := logD / ft * (tmp + math.Sqrt(tmp*tmp+2*btilde*omega/logD))
	return math.Min(errChern, 1-btilde)
}

// Calibration holds the per-vertex failure budgets computed in phase 2.
// DeltaL[v] + DeltaU[v] summed over v is at most delta/2; the other delta/2
// is consumed by the omega fallback bound.
type Calibration struct {
	DeltaL, DeltaU []float64
	// Omega is carried along for convenience.
	Omega float64
	Eps   float64

	// Derived state for the amortized stopping check (see HaveToStop):
	// cached logs, the sweep order, and the last vertex that failed the
	// bounds. Populated by Calibrate; recomputed lazily for hand-built
	// Calibrations.
	logDL, logDU []float64
	order        []uint32
	lastFail     int32
}

// balancingFactor is the fraction of the adaptive budget spread uniformly
// over all vertices so that no vertex gets a vanishing budget (mirrors the
// original implementation's balancing).
const balancingFactor = 0.1

// Calibrate computes per-vertex failure budgets from the counts of the
// initial non-adaptive samples (counts[v] = number of calibration paths
// through v, tau0 = number of calibration samples).
//
// Heuristic: solving f(btilde, deltav, omega, tau) ~= eps for tau gives a
// finishing time proportional to log(1/deltav) * (2*btilde + 2*eps/3)/eps^2.
// Equalizing finishing times across vertices means log(1/deltav)
// proportional to 1/(2*btilde(v) + 2*eps/3); we binary-search the
// proportionality constant kappa so that the total budget
// sum_v 2*exp(-kappa/(2*btilde(v)+2*eps/3)) equals (1-balancing)*delta/2,
// then spread the remaining balancing*delta/2 uniformly. High-betweenness
// vertices (the stopping bottleneck) thereby receive the largest budgets.
func Calibrate(counts []int64, tau0 int64, omega, eps, delta float64) *Calibration {
	n := len(counts)
	cal := &Calibration{
		DeltaL: make([]float64, n),
		DeltaU: make([]float64, n),
		Omega:  omega,
		Eps:    eps,
	}
	budget := delta / 2 * (1 - balancingFactor)
	uniform := delta / 2 * balancingFactor / (2 * float64(n))

	// weight(v) = 2*btilde(v) + 2eps/3, the denominator of the exponent.
	weights := make([]float64, n)
	maxW := 0.0
	for v, c := range counts {
		bt := 0.0
		if tau0 > 0 {
			bt = float64(c) / float64(tau0)
		}
		weights[v] = 2*bt + 2*eps/3
		if weights[v] > maxW {
			maxW = weights[v]
		}
	}

	sumFor := func(kappa float64) float64 {
		s := 0.0
		for _, w := range weights {
			s += 2 * math.Exp(-kappa/w)
		}
		return s
	}
	// kappa=0 gives sum 2n >= budget (delta < 1 <= 2n); grow hi until the sum
	// drops below budget, then bisect.
	lo, hi := 0.0, maxW*math.Log(4*float64(n)/(delta/2))
	for sumFor(hi) > budget {
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if sumFor(mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	kappa := hi // guarantees sumFor(kappa) <= budget
	for v := range cal.DeltaL {
		d := math.Exp(-kappa/weights[v]) + uniform
		cal.DeltaL[v] = d
		cal.DeltaU[v] = d
	}
	cal.deriveCheckState(counts)
	return cal
}

// deriveCheckState precomputes what the per-epoch stopping check needs:
// log(1/deltaL[v]) and log(1/deltaU[v]) (so HaveToStop performs no math.Log
// at all), and the sweep order — vertices in descending calibration-count
// order, ties broken by vertex ID for determinism. High-count vertices have
// the largest btilde and are the stopping bottleneck, so sweeping them
// first makes the expected position of the first failing vertex O(1).
func (cal *Calibration) deriveCheckState(counts []int64) {
	n := len(cal.DeltaL)
	cal.logDL = make([]float64, n)
	cal.logDU = make([]float64, n)
	for v := 0; v < n; v++ {
		cal.logDL[v] = math.Log(1 / cal.DeltaL[v])
		cal.logDU[v] = math.Log(1 / cal.DeltaU[v])
	}
	cal.order = make([]uint32, n)
	for v := range cal.order {
		cal.order[v] = uint32(v)
	}
	if counts != nil {
		sort.Slice(cal.order, func(i, j int) bool {
			a, b := cal.order[i], cal.order[j]
			if counts[a] != counts[b] {
				return counts[a] > counts[b]
			}
			return a < b
		})
	}
	cal.lastFail = -1
}

// TotalBudget returns sum_v (DeltaL[v] + DeltaU[v]); the guarantee requires
// it to be at most delta/2. Exposed for tests.
func (cal *Calibration) TotalBudget() float64 {
	s := 0.0
	for i := range cal.DeltaL {
		s += cal.DeltaL[i] + cal.DeltaU[i]
	}
	return s
}

// HaveToStop evaluates the stopping condition of §III-A on a consistent
// aggregated sampling state: it returns true when
// f(btilde(x), deltaL(x), omega, tau) < eps and
// g(btilde(x), deltaU(x), omega, tau) < eps hold simultaneously for every
// vertex x, or when tau has reached omega (the non-adaptive fallback).
//
// The check is amortized O(1) per epoch: the last vertex that failed the
// bounds is re-checked first (in a long run the same bottleneck vertex
// fails for many consecutive epochs, so most calls return after one
// two-bound evaluation), and the sweep otherwise proceeds in descending
// calibration-count order with cached logs, exiting at the first failure.
// The functions f and g are NOT monotone in the state (paper §III-B
// footnote), so no vertex is ever permanently pruned: a full sweep over all
// n vertices still runs before the check may return true, and the
// early-exit/ordering/caching never change the boolean outcome — only how
// fast a failing state is recognized. The non-monotonicity is also why
// callers must never evaluate this on a state that is concurrently mutated;
// the epoch framework and the MPI snapshotting exist precisely to provide
// frozen states.
//
// HaveToStop updates the cached failing vertex, so it is not safe for
// concurrent use (it never was: consistent states are single-consumer).
func (cal *Calibration) HaveToStop(counts []int64, tau int64) bool {
	if tau <= 0 {
		return false
	}
	if float64(tau) >= cal.Omega {
		return true
	}
	if cal.logDL == nil {
		// Hand-built Calibration (tests): derive lazily, natural order.
		cal.deriveCheckState(nil)
	}
	ft := float64(tau)
	last := cal.lastFail
	if last >= 0 && cal.vertexFails(uint32(last), counts[last], ft, tau) {
		return false
	}
	for _, v := range cal.order {
		if int32(v) == last {
			continue // just re-checked above
		}
		if cal.vertexFails(v, counts[v], ft, tau) {
			cal.lastFail = int32(v)
			return false
		}
	}
	cal.lastFail = -1
	return true
}

// AchievedEps returns the anytime guarantee eps' held by a consistent
// state: with probability at least 1-delta, every estimate is within eps'
// of the truth, where eps' is the largest per-vertex error bound
//
//	eps' = max_x max(f(btilde(x), deltaL(x), omega, tau),
//	                 g(btilde(x), deltaU(x), omega, tau)).
//
// This is the quantity the adaptive loop drives below the target eps; the
// paper's anytime property is exactly that eps' is a valid guarantee after
// every epoch, so a budget-stopped run can report it honestly. Once tau has
// reached omega the static VC bound caps eps' at the target eps. The sweep
// is O(n); callers on hot paths should invoke it only when reporting.
func (cal *Calibration) AchievedEps(counts []int64, tau int64) float64 {
	if tau <= 0 {
		return 1
	}
	if cal.logDL == nil {
		cal.deriveCheckState(nil)
	}
	ft := float64(tau)
	worst := 0.0
	for v, c := range counts {
		bt := float64(c) / ft
		if f := fBoundLog(bt, cal.logDL[v], cal.Omega, tau); f > worst {
			worst = f
		}
		if g := gBoundLog(bt, cal.logDU[v], cal.Omega, tau); g > worst {
			worst = g
		}
	}
	if ft >= cal.Omega && worst > cal.Eps {
		worst = cal.Eps
	}
	if worst > 1 {
		worst = 1
	}
	return worst
}

// vertexFails reports whether v currently violates either error bound.
func (cal *Calibration) vertexFails(v uint32, c int64, ft float64, tau int64) bool {
	bt := float64(c) / ft
	if fBoundLog(bt, cal.logDL[v], cal.Omega, tau) >= cal.Eps {
		return true
	}
	return gBoundLog(bt, cal.logDU[v], cal.Omega, tau) >= cal.Eps
}
