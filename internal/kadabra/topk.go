package kadabra

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Top-k mode. The paper's introduction motivates small eps by the need to
// "reliably detect [the] vertices with highest betweenness score"; the
// KADABRA paper itself ships a dedicated top-k variant whose stopping
// condition asks not for a uniform absolute error but for a certified
// ranking: the confidence intervals of the top-k vertices must separate
// from everyone else's (or shrink below a resolution limit, when scores are
// tied within eps). This is usually far cheaper than driving the uniform
// error below the k-th score gap.

// TopKResult extends Result with the certified ranking.
type TopKResult struct {
	Result
	// Top holds the k top vertices in descending order of estimated score.
	Top []graph.Node
	// Lower and Upper are per-vertex confidence bounds (valid
	// simultaneously with probability 1-delta): Lower[v] <= b(v) <= Upper[v].
	Lower, Upper []float64
	// Separated reports whether the run ended with a clean separation
	// (true) or by hitting the eps resolution limit / omega (false).
	Separated bool
}

// TopKHaveToStop evaluates the top-k stopping condition on a consistent
// state: order vertices by empirical betweenness; stop when the k-th
// smallest lower bound among the top set dominates the largest upper bound
// outside it (clean separation), or when every confidence interval has
// shrunk below eps (the ranking is then correct up to eps-ties), or when
// tau has reached omega.
//
// The scratch slices lower/upper (length n) are filled with the bounds as a
// side effect, so callers can report them.
func (cal *Calibration) TopKHaveToStop(counts []int64, tau int64, k int, lower, upper []float64) (stop, separated bool) {
	n := len(counts)
	if tau <= 0 || k <= 0 || k >= n {
		return false, false
	}
	ft := float64(tau)
	for v, c := range counts {
		bt := float64(c) / ft
		lower[v] = bt - FBound(bt, cal.DeltaL[v], cal.Omega, tau)
		upper[v] = bt + GBound(bt, cal.DeltaU[v], cal.Omega, tau)
	}
	// Find the top-k set by empirical score via partial selection.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	minTopLower := 1.0
	for _, v := range idx[:k] {
		if lower[v] < minTopLower {
			minTopLower = lower[v]
		}
	}
	maxRestUpper := 0.0
	for _, v := range idx[k:] {
		if upper[v] > maxRestUpper {
			maxRestUpper = upper[v]
		}
	}
	if minTopLower >= maxRestUpper {
		return true, true
	}
	// Resolution fallback: all intervals narrower than eps.
	allNarrow := true
	for v := range counts {
		if upper[v]-lower[v] >= cal.Eps {
			allNarrow = false
			break
		}
	}
	if allNarrow {
		return true, false
	}
	if ft >= cal.Omega {
		return true, false
	}
	return false, false
}

// SequentialTopK runs the sequential KADABRA top-k variant: identify the k
// highest-betweenness vertices. cfg.Eps acts as the resolution limit for
// tie-breaking (the returned ranking may swap vertices whose true scores
// differ by less than eps).
func SequentialTopK(ctx context.Context, g *graph.Graph, k int, cfg Config) (*TopKResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	if k < 1 || k >= g.NumNodes() {
		return nil, fmt.Errorf("kadabra: k=%d out of range [1, %d)", k, g.NumNodes())
	}
	start := time.Now()
	cfg = cfg.withDefaults()
	b := cfg.NewBudget(start)
	n := g.NumNodes()

	vd, diamTime := resolveVertexDiameter(g, cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	omega := Omega(vd, cfg.Eps, cfg.Delta)

	r := rng.NewRand(cfg.Seed)
	sampler := bfs.NewSampler(g, r)
	counts := make([]int64, n)
	var tau int64
	takeSample := func() {
		internal, ok := sampler.Sample()
		tau++
		if ok {
			for _, v := range internal {
				counts[v]++
			}
		}
	}

	calStart := time.Now()
	tau0 := int64(omega)/int64(cfg.StartFactor) + 1
	for tau < tau0 && !(b.MaxSamples > 0 && tau >= b.MaxSamples) {
		if tau%calCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if b.Overdue() {
				break
			}
		}
		takeSample()
	}
	cal := Calibrate(counts, tau, omega, cfg.Eps, cfg.Delta)
	calTime := time.Since(calStart)

	samplingStart := time.Now()
	lower := make([]float64, n)
	upper := make([]float64, n)
	checks := 0
	var stop, separated, budgeted bool
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stop, separated = cal.TopKHaveToStop(counts, tau, k, lower, upper)
		checks++
		if cfg.OnEpoch != nil {
			p := Progress{Epoch: checks, Tau: tau, AchievedEps: intervalEps(counts, tau, lower, upper)}
			if el := time.Since(calStart).Seconds(); el > 0 {
				p.SamplesPerSec = float64(tau) / el
			}
			cfg.OnEpoch(p)
		}
		if stop {
			break
		}
		if b.Exceeded(tau) {
			budgeted = true
			break
		}
		// The batch target honours the sample cap exactly, matching the
		// uniform sequential engine's "stops at exactly MaxSamples".
		batch := int64(cfg.CheckInterval)
		if b.MaxSamples > 0 && b.MaxSamples-tau < batch {
			batch = b.MaxSamples - tau
		}
		for i := int64(0); i < batch && float64(tau) < omega; i++ {
			takeSample()
			if tau%calCheckEvery == 0 && (b.Overdue() || ctx.Err() != nil) {
				break
			}
		}
	}
	samplingTime := time.Since(samplingStart)

	bt := make([]float64, n)
	for v, c := range counts {
		bt[v] = float64(c) / float64(tau)
	}
	res := &TopKResult{
		Result: Result{
			Betweenness:    bt,
			Tau:            tau,
			Omega:          omega,
			VertexDiameter: vd,
			Epochs:         checks,
			AchievedEps:    cal.AchievedEps(counts, tau),
			Converged:      !budgeted,
			Timings: Timings{
				Diameter:    diamTime,
				Calibration: calTime,
				Sampling:    samplingTime,
			},
		},
		Lower:     lower,
		Upper:     upper,
		Separated: separated,
	}
	res.Top = res.TopK(k)
	return res, nil
}

// intervalEps is the anytime guarantee read off the top-k confidence
// intervals: the largest one-sided deviation of any vertex's interval from
// its point estimate (equal to max(f, g) per vertex, since the bounds were
// built from them).
func intervalEps(counts []int64, tau int64, lower, upper []float64) float64 {
	if tau <= 0 {
		return 1
	}
	ft := float64(tau)
	worst := 0.0
	for v, c := range counts {
		bt := float64(c) / ft
		if d := bt - lower[v]; d > worst {
			worst = d
		}
		if d := upper[v] - bt; d > worst {
			worst = d
		}
	}
	if worst > 1 {
		worst = 1
	}
	return worst
}
