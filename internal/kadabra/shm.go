package kadabra

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/bfs"
	"repro/internal/epoch"
	"repro/internal/graph"
	"repro/internal/rng"
)

// SharedMemory runs the epoch-based shared-memory parallelization of
// KADABRA — the state-of-the-art competitor of the paper (its Ref. 24),
// which the MPI algorithm is benchmarked against in Figures 2 and 3.
//
// Thread 0 is the coordinator: it samples, initiates epoch transitions,
// aggregates the frozen epoch frames and checks the stopping condition,
// overlapping all coordination with further sampling (paper Alg. 2 with the
// MPI calls removed). Threads 1..T-1 only sample and poll CheckTransition —
// they are wait-free.
//
// The context is checked once per epoch on the coordinator (and between
// calibration batches on every thread); on cancellation the run stops
// within one epoch and returns ctx.Err().
func SharedMemory(ctx context.Context, g *graph.Graph, threads int, cfg Config) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	return runSharedMemory(ctx, UndirectedWorkload(g), threads, cfg)
}

// runSharedMemory is the one-shot wrapper over the shared-memory engine of
// the anytime estimator state machine (estimator.go): build the session
// with the resolved thread count, run it to completion (or to the Config
// budget), and materialize the result. The epoch framework, cancellation,
// budgets, and the OnEpoch hook live in the machine, workload-agnostic;
// only the sampling kernel each thread runs differs.
func runSharedMemory(ctx context.Context, w Workload, threads int, cfg Config) (*Result, error) {
	start := time.Now()
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	st, err := NewEstimatorState(w, threads, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := st.Run(ctx, cfg.NewBudget(start)); err != nil {
		return nil, err
	}
	return st.Result(), nil
}

// SimpleParallel is the strawman parallelization the paper's §III-B warns
// about: all threads take a fixed batch of samples, then a blocking barrier
// synchronizes everyone, the batches are merged and the stopping condition
// is checked — with no overlap of sampling and aggregation. It exists as
// the ablation baseline demonstrating why the epoch framework is needed.
func SimpleParallel(ctx context.Context, g *graph.Graph, threads int, cfg Config) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	vd, diamTime := resolveVertexDiameter(g, cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	omega := Omega(vd, cfg.Eps, cfg.Delta)

	master := rng.NewRand(cfg.Seed)
	samplers := make([]*bfs.Sampler, threads)
	for i := range samplers {
		samplers[i] = bfs.NewSampler(g, master.Split())
	}

	calStart := time.Now()
	tau0 := int64(omega)/int64(cfg.StartFactor) + 1
	S := newStateFrame(n, cfg)
	batch := func(per int) {
		var wg sync.WaitGroup
		partial := make([]*epoch.StateFrame, threads)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				local := newStateFrame(n, cfg)
				for i := 0; i < per; i++ {
					SampleInto(samplers[t], local)
				}
				partial[t] = local
			}(t)
		}
		wg.Wait() // the blocking barrier: nothing overlaps
		for t := 0; t < threads; t++ {
			S.Add(partial[t])
		}
	}
	batch(int(tau0)/threads + 1)
	cal := Calibrate(S.C, S.Tau, omega, cfg.Eps, cfg.Delta)
	calTime := time.Since(calStart)

	samplingStart := time.Now()
	n0 := cfg.EpochLength(threads)
	epochs := 0
	var checkTime time.Duration
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs := time.Now()
		stop := cal.HaveToStop(S.C, S.Tau)
		checkTime += time.Since(cs)
		if stop {
			break
		}
		batch(n0)
		epochs++
	}
	samplingTime := time.Since(samplingStart)

	bt := make([]float64, n)
	for v, c := range S.C {
		bt[v] = float64(c) / float64(S.Tau)
	}
	return &Result{
		Betweenness:    bt,
		Tau:            S.Tau,
		Omega:          omega,
		VertexDiameter: vd,
		Epochs:         epochs,
		AchievedEps:    cal.AchievedEps(S.C, S.Tau),
		Converged:      true,
		Timings: Timings{
			Diameter:    diamTime,
			Calibration: calTime,
			Sampling:    samplingTime,
			Check:       checkTime,
		},
	}, nil
}
