package kadabra

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfs"
	"repro/internal/epoch"
	"repro/internal/graph"
	"repro/internal/rng"
)

// SharedMemory runs the epoch-based shared-memory parallelization of
// KADABRA — the state-of-the-art competitor of the paper (its Ref. 24),
// which the MPI algorithm is benchmarked against in Figures 2 and 3.
//
// Thread 0 is the coordinator: it samples, initiates epoch transitions,
// aggregates the frozen epoch frames and checks the stopping condition,
// overlapping all coordination with further sampling (paper Alg. 2 with the
// MPI calls removed). Threads 1..T-1 only sample and poll CheckTransition —
// they are wait-free.
//
// The context is checked once per epoch on the coordinator (and between
// calibration batches on every thread); on cancellation the run stops
// within one epoch and returns ctx.Err().
func SharedMemory(ctx context.Context, g *graph.Graph, threads int, cfg Config) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	return runSharedMemory(ctx, UndirectedWorkload(g), threads, cfg)
}

// runSharedMemory is the generic epoch-based driver shared by the
// undirected, directed, and weighted scenarios (see workload.go): the epoch
// framework, cancellation, and the OnEpoch hook are workload-agnostic; only
// the sampling kernel each thread runs differs.
func runSharedMemory(ctx context.Context, w Workload, threads int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := w.n

	// Phase 1: diameter.
	vd, diamTime := w.ResolveDiameter(cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	omega := Omega(vd, cfg.Eps, cfg.Delta)

	// Per-thread samplers with split RNG streams.
	master := rng.NewRand(cfg.Seed)
	samplers := make([]Sampler, threads)
	for i := range samplers {
		samplers[i] = w.newSampler(master.Split())
	}

	// Phase 2: calibration — pleasingly parallel fixed-size sampling
	// followed by a blocking aggregation (paper §IV-F). The per-thread
	// partial states are sparse frames, so the merge costs O(touched) per
	// thread instead of O(T·n).
	calStart := time.Now()
	tau0 := int64(omega)/int64(cfg.StartFactor) + 1
	// S is the aggregated state; it starts from the calibration samples,
	// which the algorithm keeps (paper §III-A phase 2 feeds phase 3), and
	// cuts over to dense on its own as the run fills it up.
	S := newStateFrame(n, cfg)
	{
		var wg sync.WaitGroup
		partial := make([]*epoch.StateFrame, threads)
		per := int(tau0)/threads + 1
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				local := newStateFrame(n, cfg)
				for i := 0; i < per; i++ {
					if i%256 == 0 && ctx.Err() != nil {
						break
					}
					SampleInto(samplers[t], local)
				}
				partial[t] = local
			}(t)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for t := 0; t < threads; t++ {
			S.Add(partial[t])
		}
	}
	cal := Calibrate(S.C, S.Tau, omega, cfg.Eps, cfg.Delta)
	calTime := time.Since(calStart)

	// Phase 3: epoch-based adaptive sampling.
	samplingStart := time.Now()
	fw := epoch.New(threads, n)
	if cfg.DenseFrames {
		fw.ForceDense()
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	for t := 1; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sf := fw.Frame(t)
			for !done.Load() {
				SampleInto(samplers[t], sf)
				if fw.CheckTransition(t) {
					sf = fw.Frame(t)
				}
			}
			for fw.CheckTransition(t) {
			}
		}(t)
	}

	n0 := cfg.EpochLength(threads)
	var e uint64
	var transTime, checkTime time.Duration
	epochs := 0
	coord := samplers[0]
	for {
		if err := ctx.Err(); err != nil {
			done.Store(true)
			wg.Wait()
			return nil, err
		}
		sf := fw.Frame(0)
		for i := 0; i < n0; i++ {
			SampleInto(coord, sf)
		}
		ts := time.Now()
		fw.ForceTransition()
		next := fw.Frame(0)
		for !fw.TransitionDone(e + 1) {
			SampleInto(coord, next)
		}
		transTime += time.Since(ts)
		fw.AggregateEpoch(e, S)
		epochs++
		cs := time.Now()
		stop := cal.HaveToStop(S.C, S.Tau)
		checkTime += time.Since(cs)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epochs, S.Tau)
		}
		e++
		if stop {
			done.Store(true)
			break
		}
	}
	wg.Wait()
	samplingTime := time.Since(samplingStart)

	bt := make([]float64, n)
	for v, c := range S.C {
		bt[v] = float64(c) / float64(S.Tau)
	}
	return &Result{
		Betweenness:    bt,
		Tau:            S.Tau,
		Omega:          omega,
		VertexDiameter: vd,
		Epochs:         epochs,
		Timings: Timings{
			Diameter:    diamTime,
			Calibration: calTime,
			Sampling:    samplingTime,
			Transition:  transTime,
			Check:       checkTime,
		},
	}, nil
}

// SimpleParallel is the strawman parallelization the paper's §III-B warns
// about: all threads take a fixed batch of samples, then a blocking barrier
// synchronizes everyone, the batches are merged and the stopping condition
// is checked — with no overlap of sampling and aggregation. It exists as
// the ablation baseline demonstrating why the epoch framework is needed.
func SimpleParallel(ctx context.Context, g *graph.Graph, threads int, cfg Config) (*Result, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	vd, diamTime := resolveVertexDiameter(g, cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	omega := Omega(vd, cfg.Eps, cfg.Delta)

	master := rng.NewRand(cfg.Seed)
	samplers := make([]*bfs.Sampler, threads)
	for i := range samplers {
		samplers[i] = bfs.NewSampler(g, master.Split())
	}

	calStart := time.Now()
	tau0 := int64(omega)/int64(cfg.StartFactor) + 1
	S := newStateFrame(n, cfg)
	batch := func(per int) {
		var wg sync.WaitGroup
		partial := make([]*epoch.StateFrame, threads)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				local := newStateFrame(n, cfg)
				for i := 0; i < per; i++ {
					SampleInto(samplers[t], local)
				}
				partial[t] = local
			}(t)
		}
		wg.Wait() // the blocking barrier: nothing overlaps
		for t := 0; t < threads; t++ {
			S.Add(partial[t])
		}
	}
	batch(int(tau0)/threads + 1)
	cal := Calibrate(S.C, S.Tau, omega, cfg.Eps, cfg.Delta)
	calTime := time.Since(calStart)

	samplingStart := time.Now()
	n0 := cfg.EpochLength(threads)
	epochs := 0
	var checkTime time.Duration
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs := time.Now()
		stop := cal.HaveToStop(S.C, S.Tau)
		checkTime += time.Since(cs)
		if stop {
			break
		}
		batch(n0)
		epochs++
	}
	samplingTime := time.Since(samplingStart)

	bt := make([]float64, n)
	for v, c := range S.C {
		bt[v] = float64(c) / float64(S.Tau)
	}
	return &Result{
		Betweenness:    bt,
		Tau:            S.Tau,
		Omega:          omega,
		VertexDiameter: vd,
		Epochs:         epochs,
		Timings: Timings{
			Diameter:    diamTime,
			Calibration: calTime,
			Sampling:    samplingTime,
			Check:       checkTime,
		},
	}, nil
}
