package kadabra

import (
	"context"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Weighted-graph support (paper footnote 1). The statistical machinery is
// unchanged; only the sampler (Dijkstra-based, bfs.WeightedSampler) and the
// vertex-diameter bound differ.

// WeightedVertexDiameter estimates an upper bound on the weighted vertex
// diameter — the maximum number of VERTICES on any minimum-weight path,
// which is what omega's sample-complexity term needs (not the weighted
// diameter itself). It runs a few Dijkstra sweeps, takes the maximum
// hop-count observed in the shortest-path trees, and doubles it: any
// shortest u-w path is hop-wise at most the u->pivot plus pivot->w tree
// paths only when it passes the pivot, so the doubling provides headroom
// for paths that do not. This mirrors the estimation approach used in
// practice (a pessimistic bound only slows the algorithm down; correctness
// is unaffected because the adaptive stopping condition still certifies the
// error bounds).
func WeightedVertexDiameter(g *graph.WGraph, seed uint64) int {
	n := g.NumNodes()
	if n <= 1 {
		return n
	}
	r := rng.NewRand(seed)
	ws := bfs.NewWeightedSampler(g, r)
	maxHops := 0
	// Sweep from the max-degree vertex and a few random ones: for each, use
	// sampled far pairs to probe tree depth via path lengths.
	pivots := []graph.Node{maxDegreeW(g)}
	for i := 0; i < 3; i++ {
		pivots = append(pivots, graph.Node(r.Intn(n)))
	}
	for _, p := range pivots {
		for probe := 0; probe < 8; probe++ {
			t := graph.Node(r.Intn(n))
			if t == p {
				continue
			}
			if internal, ok := ws.SamplePath(p, t); ok {
				if h := len(internal) + 1; h > maxHops {
					maxHops = h
				}
			}
		}
	}
	vd := 2*maxHops + 2
	if vd > n {
		vd = n
	}
	if vd < 2 {
		vd = 2
	}
	return vd
}

func maxDegreeW(g *graph.WGraph) graph.Node {
	best, bestDeg := graph.Node(0), -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(graph.Node(v)); d > bestDeg {
			best, bestDeg = graph.Node(v), d
		}
	}
	return best
}

// SequentialWeighted runs sequential KADABRA on a positively weighted
// connected graph. Cancellation and the OnEpoch hook behave exactly as in
// Sequential.
func SequentialWeighted(ctx context.Context, g *graph.WGraph, cfg Config) (*Result, error) {
	w := WeightedWorkload(g)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return runSequential(ctx, w, cfg)
}

// SharedMemoryWeighted runs the epoch-based shared-memory parallelization
// on a positively weighted connected graph: the epoch framework is
// untouched, only the sampling kernel each thread runs is Dijkstra-based.
func SharedMemoryWeighted(ctx context.Context, g *graph.WGraph, threads int, cfg Config) (*Result, error) {
	w := WeightedWorkload(g)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return runSharedMemory(ctx, w, threads, cfg)
}
