package kadabra

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/brandes"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestOmegaBasics(t *testing.T) {
	// omega grows as eps shrinks, and with the diameter.
	o1 := Omega(10, 0.01, 0.1)
	o2 := Omega(10, 0.001, 0.1)
	if o2 <= o1 {
		t.Fatalf("omega must grow as eps shrinks: %f vs %f", o1, o2)
	}
	if o2/o1 < 50 || o2/o1 > 200 {
		t.Fatalf("omega should scale ~1/eps^2: ratio %f", o2/o1)
	}
	if Omega(1000, 0.01, 0.1) <= Omega(4, 0.01, 0.1) {
		t.Fatal("omega must grow with the vertex diameter")
	}
	// Tiny diameters must not produce NaN/Inf (log2(VD-2) guard).
	for _, vd := range []int{1, 2, 3, 4} {
		if o := Omega(vd, 0.05, 0.1); math.IsNaN(o) || math.IsInf(o, 0) || o <= 0 {
			t.Fatalf("Omega(%d) = %f", vd, o)
		}
	}
}

func TestOmegaPanics(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{
		{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Omega(%v,%v) did not panic", c.eps, c.delta)
				}
			}()
			Omega(10, c.eps, c.delta)
		}()
	}
}

func TestBoundsShrinkWithTau(t *testing.T) {
	omega := 100000.0
	for _, bt := range []float64{0, 0.001, 0.1, 0.5} {
		prevF, prevG := math.Inf(1), math.Inf(1)
		for _, tau := range []int64{100, 1000, 10000, 100000} {
			f := FBound(bt, 0.01, omega, tau)
			g := GBound(bt, 0.01, omega, tau)
			if f < 0 || g < 0 {
				t.Fatalf("negative bound: f=%f g=%f", f, g)
			}
			if f > prevF+1e-12 || g > prevG+1e-12 {
				t.Fatalf("bounds must shrink with tau at bt=%f: f %f->%f g %f->%f",
					bt, prevF, f, prevG, g)
			}
			prevF, prevG = f, g
		}
	}
}

func TestBoundsClamped(t *testing.T) {
	// f is clamped to btilde, g to 1-btilde.
	if f := FBound(0.001, 0.01, 1e6, 10); f > 0.001 {
		t.Fatalf("f=%f exceeds btilde", f)
	}
	if g := GBound(0.999, 0.01, 1e6, 10); g > 0.001+1e-12 {
		t.Fatalf("g=%f exceeds 1-btilde", g)
	}
	if f := FBound(0, 0.01, 1e6, 100); f != 0 {
		t.Fatalf("f(0) = %f, want 0", f)
	}
}

func TestBoundsLooserForSmallerDelta(t *testing.T) {
	// Smaller per-vertex delta (stronger guarantee) must give larger bounds.
	f1 := FBound(0.3, 0.1, 1e5, 5000)
	f2 := FBound(0.3, 0.0001, 1e5, 5000)
	if f2 <= f1 {
		t.Fatalf("f must grow as delta shrinks: %f vs %f", f1, f2)
	}
	g1 := GBound(0.3, 0.1, 1e5, 5000)
	g2 := GBound(0.3, 0.0001, 1e5, 5000)
	if g2 <= g1 {
		t.Fatalf("g must grow as delta shrinks: %f vs %f", g1, g2)
	}
}

func TestCalibrateBudget(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = int64((seed >> (uint(i) % 48)) % 50)
		}
		cal := Calibrate(counts, 100, 10000, 0.01, 0.1)
		return cal.TotalBudget() <= 0.1/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibratePrioritizesHighBetweenness(t *testing.T) {
	counts := []int64{90, 10, 0, 0}
	cal := Calibrate(counts, 100, 10000, 0.01, 0.1)
	if cal.DeltaL[0] <= cal.DeltaL[1] || cal.DeltaL[1] <= cal.DeltaL[2] {
		t.Fatalf("budgets not ordered by betweenness: %v", cal.DeltaL)
	}
	if cal.DeltaL[2] != cal.DeltaL[3] {
		t.Fatalf("equal-count vertices got different budgets: %v", cal.DeltaL)
	}
	for _, d := range cal.DeltaL {
		if d <= 0 {
			t.Fatal("zero budget assigned; uniform floor missing")
		}
	}
}

func TestHaveToStop(t *testing.T) {
	counts := []int64{5, 3, 0}
	cal := Calibrate(counts, 10, 1000, 0.05, 0.1)
	if cal.HaveToStop(counts, 0) {
		t.Fatal("must not stop with tau=0")
	}
	if cal.HaveToStop(counts, 10) {
		t.Fatal("must not stop after 10 samples at eps=0.05")
	}
	if !cal.HaveToStop(counts, 1001) {
		t.Fatal("must stop once tau >= omega")
	}
}

func TestEpochLengthShrinksWithWorkers(t *testing.T) {
	cfg := Config{}
	prev := math.MaxInt64
	for _, w := range []int{1, 4, 16, 64, 384} {
		n0 := cfg.EpochLength(w)
		if n0 > prev {
			t.Fatalf("epoch length grew with workers: %d -> %d", prev, n0)
		}
		if n0 < 16 {
			t.Fatalf("epoch length below floor: %d", n0)
		}
		prev = n0
	}
}

// guaranteeCheck validates the (eps, delta) guarantee against Brandes.
func guaranteeCheck(t *testing.T, g *graph.Graph, res *Result, eps float64) {
	t.Helper()
	exact := brandes.Exact(g)
	worst := 0.0
	for v := range exact {
		if d := math.Abs(exact[v] - res.Betweenness[v]); d > worst {
			worst = d
		}
	}
	if worst > eps {
		t.Fatalf("max error %f exceeds eps %f (tau=%d omega=%f)", worst, eps, res.Tau, res.Omega)
	}
}

func testGraph() *graph.Graph {
	g := gen.RMAT(gen.Graph500(8, 8, 17))
	g, _ = graph.LargestComponent(g)
	return g
}

func TestSequentialGuarantee(t *testing.T) {
	g := testGraph()
	eps := 0.03
	res, err := Sequential(context.Background(), g, Config{Eps: eps, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau <= 0 || res.Tau > int64(res.Omega)+1 {
		t.Fatalf("implausible tau %d (omega %f)", res.Tau, res.Omega)
	}
	guaranteeCheck(t, g, res, eps)
	// Scores must be a probability-like vector.
	for _, b := range res.Betweenness {
		if b < 0 || b > 1 {
			t.Fatalf("betweenness out of range: %f", b)
		}
	}
}

func TestSequentialDeterminism(t *testing.T) {
	g := testGraph()
	cfg := Config{Eps: 0.05, Delta: 0.1, Seed: 7}
	a, err := Sequential(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tau != b.Tau {
		t.Fatalf("same seed, different tau: %d vs %d", a.Tau, b.Tau)
	}
	for v := range a.Betweenness {
		if a.Betweenness[v] != b.Betweenness[v] {
			t.Fatal("same seed, different scores")
		}
	}
}

func TestSequentialStopsEarlierWithLooserEps(t *testing.T) {
	g := testGraph()
	tight, err := Sequential(context.Background(), g, Config{Eps: 0.02, Delta: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Sequential(context.Background(), g, Config{Eps: 0.1, Delta: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Tau >= tight.Tau {
		t.Fatalf("looser eps took more samples: %d vs %d", loose.Tau, tight.Tau)
	}
}

func TestSequentialRejectsTinyGraph(t *testing.T) {
	if _, err := Sequential(context.Background(), graph.NewBuilder(1).Build(), Config{}); err == nil {
		t.Fatal("singleton graph accepted")
	}
}

func TestSharedMemoryGuarantee(t *testing.T) {
	g := testGraph()
	eps := 0.03
	res, err := SharedMemory(context.Background(), g, 4, Config{Eps: eps, Delta: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	guaranteeCheck(t, g, res, eps)
	if res.Epochs < 1 {
		t.Fatalf("no epochs recorded: %d", res.Epochs)
	}
	if res.Tau <= 0 {
		t.Fatalf("tau = %d", res.Tau)
	}
}

func TestSharedMemorySingleThread(t *testing.T) {
	g := testGraph()
	res, err := SharedMemory(context.Background(), g, 1, Config{Eps: 0.05, Delta: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	guaranteeCheck(t, g, res, 0.05)
}

func TestSimpleParallelGuarantee(t *testing.T) {
	g := testGraph()
	eps := 0.04
	res, err := SimpleParallel(context.Background(), g, 4, Config{Eps: eps, Delta: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	guaranteeCheck(t, g, res, eps)
}

func TestResultTopK(t *testing.T) {
	g := testGraph()
	res, err := Sequential(context.Background(), g, Config{Eps: 0.03, Delta: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if res.Betweenness[top[i-1]] < res.Betweenness[top[i]] {
			t.Fatal("TopK not descending")
		}
	}
	// The approximate top-1 should be the exact top-1 for eps well below the
	// top score gap on this graph.
	exactTop := brandes.TopK(brandes.Exact(g), 3)
	found := false
	for _, v := range top[:3] {
		if v == exactTop[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact top vertex %d missing from approximate top-3 %v", exactTop[0], top[:3])
	}
}

func TestVertexDiameterOverrideSkipsPhase(t *testing.T) {
	g := testGraph()
	res, err := Sequential(context.Background(), g, Config{Eps: 0.05, Delta: 0.1, Seed: 1, VertexDiameter: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.VertexDiameter != 12 {
		t.Fatalf("override ignored: %d", res.VertexDiameter)
	}
	if res.Timings.Diameter != 0 {
		t.Fatal("diameter time charged despite override")
	}
}
