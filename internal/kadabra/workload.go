package kadabra

import (
	"fmt"
	"time"

	"repro/internal/bfs"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/rng"
)

// This file is the workload abstraction behind every single-process KADABRA
// variant. The paper's footnote 1 observes that the parallelization applies
// unchanged to directed and weighted graphs once the sampling kernel is
// swapped; the abstraction makes that literal: a workload bundles the two
// graph-dependent ingredients — the per-thread path sampler and the phase-1
// vertex-diameter bound — and the generic drivers (runSequential,
// runSharedMemory) carry the statistical machinery, context cancellation,
// and the OnEpoch progress hook for all of them.

// sampler is the per-thread sampling kernel: one call draws a uniform
// random vertex pair and a uniform shortest path between them, returning
// the path's internal vertices (ok=false when the pair is unreachable; the
// sample still counts toward tau).
type sampler interface {
	Sample() (internal []graph.Node, ok bool)
}

// workload is one estimation scenario over a fixed graph.
type workload struct {
	// n is the number of vertices.
	n int
	// newSampler builds an independent sampling kernel over the graph; each
	// sampling thread gets its own kernel with a split RNG stream.
	newSampler func(r *rng.Rand) sampler
	// vertexDiameter computes the phase-1 vertex-diameter bound (only
	// called when cfg.VertexDiameter does not override it).
	vertexDiameter func(cfg Config) int
}

// undirectedWorkload wraps the paper's standard scenario: bidirectional BFS
// sampling on an undirected graph. This is the one workload whose exact
// diameter phase can dominate, so it honours cfg.DiameterBFSCap; the
// directed/weighted bounds below are already constant-sweep heuristics.
func undirectedWorkload(g *graph.Graph) workload {
	return workload{
		n: g.NumNodes(),
		newSampler: func(r *rng.Rand) sampler {
			return bfs.NewSampler(g, r)
		},
		vertexDiameter: func(cfg Config) int {
			if cfg.DiameterBFSCap > 0 {
				d, _ := diameter.IFUB(g, cfg.DiameterBFSCap)
				return int(d) + 1
			}
			return diameter.VertexDiameter(g)
		},
	}
}

// directedWorkload swaps in the bidirectional sampler over out-arcs and the
// stored transpose. The digraph must be strongly connected (graph.LargestSCC)
// for the vertex-diameter bound to be valid.
func directedWorkload(g *graph.Digraph) workload {
	return workload{
		n: g.NumNodes(),
		newSampler: func(r *rng.Rand) sampler {
			return bfs.NewDirectedSampler(g, r)
		},
		vertexDiameter: func(cfg Config) int {
			return DirectedVertexDiameter(g)
		},
	}
}

// weightedWorkload swaps in the Dijkstra-based sampler. The graph must be
// connected with positive weights.
func weightedWorkload(g *graph.WGraph) workload {
	return workload{
		n: g.NumNodes(),
		newSampler: func(r *rng.Rand) sampler {
			return bfs.NewWeightedSampler(g, r)
		},
		vertexDiameter: func(cfg Config) int {
			return WeightedVertexDiameter(g, cfg.Seed+0xABCD)
		},
	}
}

// resolveWorkloadDiameter runs phase 1 for a workload (or uses the
// precomputed override), mirroring resolveVertexDiameter.
func resolveWorkloadDiameter(w workload, cfg Config) (int, time.Duration) {
	if cfg.VertexDiameter > 0 {
		return cfg.VertexDiameter, 0
	}
	start := time.Now()
	vd := w.vertexDiameter(cfg)
	return vd, time.Since(start)
}

// validateWorkload rejects graphs the estimator cannot work with.
func validateWorkload(w workload) error {
	if w.n < 2 {
		return fmt.Errorf("kadabra: need at least 2 vertices, got %d", w.n)
	}
	return nil
}
