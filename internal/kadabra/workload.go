package kadabra

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bfs"
	"repro/internal/diameter"
	"repro/internal/epoch"
	"repro/internal/graph"
	"repro/internal/rng"
)

// SampleInto takes one sample with s and records it into sf: tau always
// advances, and each internal vertex of a connected sample bumps its count
// through the sparse frame API. This is the steady-state hot path of every
// driver — sequential, shared-memory coordinator and workers, and the MPI
// ranks in internal/core — hoisted to a plain function so the compiler
// keeps it allocation-free (see TestSampleSteadyStateZeroAlloc).
//
//bc:hotpath
func SampleInto(s Sampler, sf *epoch.StateFrame) {
	internal, ok := s.Sample()
	sf.Tau++
	if ok {
		for _, v := range internal {
			sf.Bump(v)
		}
	}
}

// newStateFrame builds a state frame honouring cfg.DenseFrames.
func newStateFrame(n int, cfg Config) *epoch.StateFrame {
	sf := epoch.NewStateFrame(n)
	if cfg.DenseFrames {
		sf.ForceDense()
	}
	return sf
}

// This file is the workload abstraction behind every KADABRA variant. The
// paper's footnote 1 observes that the parallelization applies unchanged to
// directed and weighted graphs once the sampling kernel is swapped; the
// abstraction makes that literal: a Workload bundles the two graph-dependent
// ingredients — the per-thread path sampler and the phase-1 vertex-diameter
// bound — and the generic drivers (SequentialWorkload, SharedMemoryWorkload
// here; Algorithm1/Algorithm2 in internal/core) carry the statistical
// machinery, context cancellation, and the OnEpoch progress hook for all of
// them.

// Sampler is the per-thread sampling kernel: one call draws a uniform
// random vertex pair and a uniform shortest path between them, returning
// the path's internal vertices (ok=false when the pair is unreachable; the
// sample still counts toward tau).
type Sampler interface {
	Sample() (internal []graph.Node, ok bool)
}

// Workload is one estimation scenario over a fixed graph: the vertex count,
// an independent-sampler factory, and the phase-1 vertex-diameter resolver.
// Construct one with UndirectedWorkload, DirectedWorkload, or
// WeightedWorkload; the zero value is not runnable.
type Workload struct {
	// n is the number of vertices.
	n int
	// newSampler builds an independent sampling kernel over the graph; each
	// sampling thread gets its own kernel with a split RNG stream.
	newSampler func(r *rng.Rand) Sampler
	// vertexDiameter computes the phase-1 vertex-diameter bound (only
	// called when cfg.VertexDiameter does not override it).
	vertexDiameter func(cfg Config) int
}

// N returns the number of vertices of the underlying graph.
func (w Workload) N() int { return w.n }

// NewSampler builds an independent sampling kernel with its own RNG stream.
func (w Workload) NewSampler(r *rng.Rand) Sampler { return w.newSampler(r) }

// ResolveDiameter runs phase 1 for the workload (or uses the precomputed
// cfg.VertexDiameter override) and reports the time spent.
func (w Workload) ResolveDiameter(cfg Config) (int, time.Duration) {
	if cfg.VertexDiameter > 0 {
		return cfg.VertexDiameter, 0
	}
	start := time.Now()
	vd := w.vertexDiameter(cfg)
	return vd, time.Since(start)
}

// Validate rejects workloads the estimator cannot run: the zero Workload
// and graphs with fewer than two vertices.
func (w Workload) Validate() error {
	if w.newSampler == nil || w.vertexDiameter == nil {
		return fmt.Errorf("kadabra: zero workload (use a workload constructor)")
	}
	if w.n < 2 {
		return fmt.Errorf("kadabra: need at least 2 vertices, got %d", w.n)
	}
	return nil
}

// WrapSampler returns a copy of the workload whose samplers are wrapped by
// wrap. It is an instrumentation seam — the fault-injection tests use it to
// count exactly how many samples each kernel drew and compare against the
// folded tau. The wrapper must preserve the sampling distribution for the
// (eps, delta) guarantee to carry over.
func (w Workload) WrapSampler(wrap func(Sampler) Sampler) Workload {
	inner := w.newSampler
	w.newSampler = func(r *rng.Rand) Sampler { return wrap(inner(r)) }
	return w
}

// UndirectedWorkload wraps the paper's standard scenario: bidirectional BFS
// sampling on an undirected graph. This is the one workload whose exact
// diameter phase can dominate, so it honours cfg.DiameterBFSCap; the
// directed/weighted bounds below are already constant-sweep heuristics.
func UndirectedWorkload(g *graph.Graph) Workload {
	return Workload{
		n: g.NumNodes(),
		newSampler: func(r *rng.Rand) Sampler {
			return bfs.NewSampler(g, r)
		},
		vertexDiameter: func(cfg Config) int {
			if cfg.DiameterBFSCap > 0 {
				d, _ := diameter.IFUB(g, cfg.DiameterBFSCap)
				return int(d) + 1
			}
			return diameter.VertexDiameter(g)
		},
	}
}

// DirectedWorkload swaps in the bidirectional sampler over out-arcs and the
// stored transpose. The digraph must be strongly connected (graph.LargestSCC)
// for the vertex-diameter bound to be valid.
func DirectedWorkload(g *graph.Digraph) Workload {
	return Workload{
		n: g.NumNodes(),
		newSampler: func(r *rng.Rand) Sampler {
			return bfs.NewDirectedSampler(g, r)
		},
		vertexDiameter: func(cfg Config) int {
			return DirectedVertexDiameter(g)
		},
	}
}

// WeightedWorkload swaps in the Dijkstra-based sampler. The graph must be
// connected with positive weights.
func WeightedWorkload(g *graph.WGraph) Workload {
	return Workload{
		n: g.NumNodes(),
		newSampler: func(r *rng.Rand) Sampler {
			return bfs.NewWeightedSampler(g, r)
		},
		vertexDiameter: func(cfg Config) int {
			return WeightedVertexDiameter(g, cfg.Seed+0xABCD)
		},
	}
}

// SequentialWorkload runs the plain (single-threaded) KADABRA algorithm on
// an arbitrary workload; Sequential, SequentialDirected, and
// SequentialWeighted are thin wrappers over it.
func SequentialWorkload(ctx context.Context, w Workload, cfg Config) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return runSequential(ctx, w, cfg)
}

// SharedMemoryWorkload runs the epoch-based shared-memory parallelization on
// an arbitrary workload; SharedMemory, SharedMemoryDirected, and
// SharedMemoryWeighted are thin wrappers over it.
func SharedMemoryWorkload(ctx context.Context, w Workload, threads int, cfg Config) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return runSharedMemory(ctx, w, threads, cfg)
}
