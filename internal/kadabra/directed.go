package kadabra

import (
	"fmt"
	"time"

	"repro/internal/bfs"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Directed-graph support, per the paper's footnote 1: "The parallelization
// techniques considered in this paper also apply to directed ... graphs if
// the required modifications to the underlying sampling algorithm are done."
// The modified sampler is bfs.DirectedSampler (forward ball over out-arcs,
// backward ball over the stored transpose); the statistical machinery
// (omega, f/g, calibration) is direction-agnostic.
//
// The input must be strongly connected (use graph.LargestSCC), mirroring
// the undirected largest-component preprocessing: on a strongly connected
// graph every sampled pair yields a path, and the vertex-diameter bound
// below is valid.

// DirectedVertexDiameter returns an upper bound on the directed vertex
// diameter of a strongly connected digraph: for any pivot v and all (u, w),
// d(u, w) <= d(u, v) + d(v, w) <= becc(v) + fecc(v), where fecc/becc are
// the forward/backward eccentricities of v. The bound is minimized over a
// few pivots (max-out-degree and the farthest vertices found), the standard
// cheap directed bound.
func DirectedVertexDiameter(g *graph.Digraph) int {
	n := g.NumNodes()
	if n <= 1 {
		return n
	}
	// Forward/backward BFS eccentricities from a pivot.
	ecc := func(start graph.Node, forward bool) (uint32, graph.Node) {
		dist := make([]uint32, n)
		for i := range dist {
			dist[i] = bfs.Unreached
		}
		dist[start] = 0
		queue := []graph.Node{start}
		far := start
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			var neigh []graph.Node
			if forward {
				neigh = g.Successors(v)
			} else {
				neigh = g.Predecessors(v)
			}
			for _, w := range neigh {
				if dist[w] == bfs.Unreached {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
					far = w
				}
			}
		}
		return dist[far], far
	}
	// Pivot 1: max out-degree vertex.
	pivot := graph.Node(0)
	bestDeg := -1
	for v := 0; v < n; v++ {
		if d := g.OutDegree(graph.Node(v)); d > bestDeg {
			bestDeg, pivot = d, graph.Node(v)
		}
	}
	best := uint32(1<<31 - 1)
	pivots := []graph.Node{pivot}
	f1, farF := ecc(pivot, true)
	b1, farB := ecc(pivot, false)
	if f1+b1 < best {
		best = f1 + b1
	}
	pivots = append(pivots, farF, farB)
	for _, p := range pivots[1:] {
		f, _ := ecc(p, true)
		b, _ := ecc(p, false)
		if f+b < best {
			best = f + b
		}
	}
	return int(best) + 1
}

// SequentialDirected runs sequential KADABRA on a strongly connected
// digraph. cfg.VertexDiameter may be set to skip the bound computation.
func SequentialDirected(g *graph.Digraph, cfg Config) (*Result, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("kadabra: need at least 2 vertices, got %d", g.NumNodes())
	}
	cfg = cfg.withDefaults()
	n := g.NumNodes()

	var vd int
	var diamTime time.Duration
	if cfg.VertexDiameter > 0 {
		vd = cfg.VertexDiameter
	} else {
		start := time.Now()
		vd = DirectedVertexDiameter(g)
		diamTime = time.Since(start)
	}
	omega := Omega(vd, cfg.Eps, cfg.Delta)

	sampler := bfs.NewDirectedSampler(g, rng.NewRand(cfg.Seed))
	counts := make([]int64, n)
	var tau int64
	takeSample := func() {
		internal, ok := sampler.Sample()
		tau++
		if ok {
			for _, v := range internal {
				counts[v]++
			}
		}
	}

	calStart := time.Now()
	tau0 := int64(omega)/int64(cfg.StartFactor) + 1
	for tau < tau0 {
		takeSample()
	}
	cal := Calibrate(counts, tau, omega, cfg.Eps, cfg.Delta)
	calTime := time.Since(calStart)

	samplingStart := time.Now()
	checks := 0
	for {
		checks++
		if cal.HaveToStop(counts, tau) {
			break
		}
		for i := 0; i < cfg.CheckInterval && float64(tau) < omega; i++ {
			takeSample()
		}
	}
	samplingTime := time.Since(samplingStart)

	bt := make([]float64, n)
	for v, c := range counts {
		bt[v] = float64(c) / float64(tau)
	}
	return &Result{
		Betweenness:    bt,
		Tau:            tau,
		Omega:          omega,
		VertexDiameter: vd,
		Epochs:         checks,
		Timings: Timings{
			Diameter:    diamTime,
			Calibration: calTime,
			Sampling:    samplingTime,
		},
	}, nil
}
