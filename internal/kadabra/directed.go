package kadabra

import (
	"context"

	"repro/internal/bfs"
	"repro/internal/graph"
)

// Directed-graph support, per the paper's footnote 1: "The parallelization
// techniques considered in this paper also apply to directed ... graphs if
// the required modifications to the underlying sampling algorithm are done."
// The modified sampler is bfs.DirectedSampler (forward ball over out-arcs,
// backward ball over the stored transpose); the statistical machinery
// (omega, f/g, calibration) is direction-agnostic.
//
// The input must be strongly connected (use graph.LargestSCC), mirroring
// the undirected largest-component preprocessing: on a strongly connected
// graph every sampled pair yields a path, and the vertex-diameter bound
// below is valid.

// DirectedVertexDiameter returns an upper bound on the directed vertex
// diameter of a strongly connected digraph: for any pivot v and all (u, w),
// d(u, w) <= d(u, v) + d(v, w) <= becc(v) + fecc(v), where fecc/becc are
// the forward/backward eccentricities of v. The bound is minimized over a
// few pivots (max-out-degree and the farthest vertices found), the standard
// cheap directed bound.
func DirectedVertexDiameter(g *graph.Digraph) int {
	n := g.NumNodes()
	if n <= 1 {
		return n
	}
	// Forward/backward BFS eccentricities from a pivot.
	ecc := func(start graph.Node, forward bool) (uint32, graph.Node) {
		dist := make([]uint32, n)
		for i := range dist {
			dist[i] = bfs.Unreached
		}
		dist[start] = 0
		queue := []graph.Node{start}
		far := start
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			var neigh []graph.Node
			if forward {
				neigh = g.Successors(v)
			} else {
				neigh = g.Predecessors(v)
			}
			for _, w := range neigh {
				if dist[w] == bfs.Unreached {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
					far = w
				}
			}
		}
		return dist[far], far
	}
	// Pivot 1: max out-degree vertex.
	pivot := graph.Node(0)
	bestDeg := -1
	for v := 0; v < n; v++ {
		if d := g.OutDegree(graph.Node(v)); d > bestDeg {
			bestDeg, pivot = d, graph.Node(v)
		}
	}
	best := uint32(1<<31 - 1)
	pivots := []graph.Node{pivot}
	f1, farF := ecc(pivot, true)
	b1, farB := ecc(pivot, false)
	if f1+b1 < best {
		best = f1 + b1
	}
	pivots = append(pivots, farF, farB)
	for _, p := range pivots[1:] {
		f, _ := ecc(p, true)
		b, _ := ecc(p, false)
		if f+b < best {
			best = f + b
		}
	}
	return int(best) + 1
}

// SequentialDirected runs sequential KADABRA on a strongly connected
// digraph. cfg.VertexDiameter may be set to skip the bound computation.
// Cancellation and the OnEpoch hook behave exactly as in Sequential.
func SequentialDirected(ctx context.Context, g *graph.Digraph, cfg Config) (*Result, error) {
	w := DirectedWorkload(g)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return runSequential(ctx, w, cfg)
}

// SharedMemoryDirected runs the epoch-based shared-memory parallelization
// on a strongly connected digraph — the paper's footnote-1 claim made
// concrete: the epoch framework is untouched, only the sampling kernel
// each thread runs is the directed one.
func SharedMemoryDirected(ctx context.Context, g *graph.Digraph, threads int, cfg Config) (*Result, error) {
	w := DirectedWorkload(g)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return runSharedMemory(ctx, w, threads, cfg)
}
