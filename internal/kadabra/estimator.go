package kadabra

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/rng"
)

// This file is the anytime core of every single-process KADABRA driver: an
// epoch-stepped state machine that owns the resumable sampling state — the
// accumulated state frame, the per-thread RNG streams, the calibration, and
// the stopping schedule — and exposes it in pieces the run-to-completion
// functions never could: Run with a Budget (stop early, stay consistent),
// Recalibrate (tighten eps while keeping every sample), and a versioned
// checkpoint codec (resume in a fresh process). runSequential and
// runSharedMemory are thin wrappers over it, so the one-shot entry points
// and the session API cannot drift apart.

// Engine selection: threads == 0 is the sequential reference engine (the
// plain KADABRA loop on one RNG stream, deterministic and bit-exactly
// resumable); threads >= 1 is the epoch-based shared-memory engine of the
// paper's Ref. 24 with that many wait-free sampling threads.
const (
	engineSequential   = 0
	engineSharedMemory = 1
)

// calCheckEvery is the cadence (in samples) of the context/budget checks
// inside the sequential calibration and deadline-bounded sampling loops.
// The checks consume no randomness, so the cadence never affects results.
const calCheckEvery = 64

// EstimatorState is the resumable core of a KADABRA estimation session over
// one workload. It is created by NewEstimatorState (which validates the
// workload and resolves the vertex diameter once), advanced by Run — every
// return leaves the state quiescent and consistent, whether the run
// converged, exhausted its budget, or was cancelled — and serialized by
// AppendCheckpoint/RestoreEstimatorState. It is not safe for concurrent
// use; the public betweenness.Estimator provides the locking front door.
type EstimatorState struct {
	w       Workload
	cfg     Config // defaults applied; Eps/Delta track Recalibrate
	threads int    // 0 = sequential engine
	vd      int
	omega   float64

	// streams are the per-thread RNG streams (one, sequentially); samplers
	// wrap them, so checkpointing the stream states at a quiescent point
	// captures the samplers exactly.
	streams  []*rng.Rand
	samplers []Sampler

	s          *epoch.StateFrame // accumulated consistent state
	cal        *Calibration
	calibrated bool
	nextCheck  int64 // sequential engine: tau of the next scheduled stopping check
	epochs     int
	converged  bool

	timings     Timings
	clock       time.Duration // cumulative active sampling wall-clock
	activeSince time.Time     // non-zero while Run executes
	clockTau    int64         // tau already present when the clock started (restored sessions)

	// ckptReq arms a one-shot in-run checkpoint capture (RequestCheckpoint,
	// callable from any goroutine); the engines service it at the next
	// consistent epoch boundary on the coordinating goroutine.
	ckptReq      atomic.Bool
	onCheckpoint func(payload []byte)
}

// NewEstimatorState validates the workload, runs the diameter phase once
// (honouring cfg.VertexDiameter), derives omega, and sets up the RNG
// streams and samplers. threads == 0 selects the sequential engine,
// threads >= 1 the epoch-based shared-memory engine; the stream derivation
// matches the corresponding one-shot driver exactly, so a session run is
// sample-for-sample identical to runSequential / runSharedMemory.
func NewEstimatorState(w Workload, threads int, cfg Config) (*EstimatorState, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if threads < 0 {
		return nil, fmt.Errorf("kadabra: estimator threads must be >= 0, got %d", threads)
	}
	cfg = cfg.withDefaults()
	st := &EstimatorState{w: w, cfg: cfg, threads: threads}
	st.vd, st.timings.Diameter = w.ResolveDiameter(cfg)
	st.omega = Omega(st.vd, cfg.Eps, cfg.Delta)
	if threads == 0 {
		st.streams = []*rng.Rand{rng.NewRand(cfg.Seed)}
	} else {
		master := rng.NewRand(cfg.Seed)
		st.streams = make([]*rng.Rand, threads)
		for i := range st.streams {
			st.streams[i] = master.Split()
		}
	}
	st.buildSamplers()
	st.s = newStateFrame(w.n, cfg)
	return st, nil
}

func (st *EstimatorState) buildSamplers() {
	st.samplers = make([]Sampler, len(st.streams))
	for i, r := range st.streams {
		st.samplers[i] = st.w.NewSampler(r)
	}
}

// Threads returns the engine's sampling-thread count (0 = sequential).
func (st *EstimatorState) Threads() int { return st.threads }

// Tau returns the consistent sample count accumulated so far.
func (st *EstimatorState) Tau() int64 { return st.s.Tau }

// Epochs returns the number of completed epochs (stopping checks).
func (st *EstimatorState) Epochs() int { return st.epochs }

// Omega returns the static maximal sample count for the current targets.
func (st *EstimatorState) Omega() float64 { return st.omega }

// VertexDiameter returns the cached phase-1 bound.
func (st *EstimatorState) VertexDiameter() int { return st.vd }

// Calibrated reports whether phase 2 has completed.
func (st *EstimatorState) Calibrated() bool { return st.calibrated }

// Converged reports whether the adaptive stopping rule is satisfied for the
// current targets; Recalibrate resets it.
func (st *EstimatorState) Converged() bool { return st.converged }

// Config returns the effective configuration (Eps/Delta track Recalibrate).
func (st *EstimatorState) Config() Config { return st.cfg }

// SetOnEpoch replaces the per-epoch progress hook (used after a restore,
// which cannot serialize functions). Call only between Runs.
func (st *EstimatorState) SetOnEpoch(fn func(Progress)) { st.cfg.OnEpoch = fn }

// SetOnCheckpoint registers the sink for in-run checkpoint captures (see
// RequestCheckpoint). The sink runs on the engine's coordinating goroutine
// at an epoch boundary, so a Run in flight pauses for its duration: hand
// the payload off (say, an atomic file write) rather than block in it.
// Call only between Runs.
func (st *EstimatorState) SetOnCheckpoint(fn func(payload []byte)) { st.onCheckpoint = fn }

// RequestCheckpoint arms a one-shot capture of the session's resumable
// state during an active Run: at the next consistent epoch boundary the
// engine serializes a checkpoint payload and hands it to the SetOnCheckpoint
// sink. Safe to call from any goroutine, including concurrently with Run —
// this is how a caller that serializes Run behind a mutex (the public
// Estimator, the daemon's periodic checkpointer) captures in-flight work
// without blocking on that mutex. A request made while no Run is active
// stays armed and is serviced by the next Run's first boundary.
//
// On the sequential engine the payload is the exact AppendCheckpoint state
// (bit-identical resume). On the shared-memory engine the worker threads'
// RNG streams are in concurrent use at a boundary, so the payload is
// synthesized like a distributed checkpoint — consistent counts, tau, and
// calibration with a fresh RNG stream — and restores onto the sequential
// engine (statistically equivalent; see AppendDistCheckpoint).
func (st *EstimatorState) RequestCheckpoint() { st.ckptReq.Store(true) }

// serviceCheckpoint fulfils an armed checkpoint request. Called by the
// engines on the coordinating goroutine at epoch boundaries, where the
// accumulated state frame is consistent.
func (st *EstimatorState) serviceCheckpoint() {
	if st.onCheckpoint == nil || !st.ckptReq.CompareAndSwap(true, false) {
		return
	}
	if st.threads == 0 {
		st.onCheckpoint(st.AppendCheckpoint(nil))
		return
	}
	// Shared-memory engine: the workers own their streams mid-run, so
	// serialize the coordinator-owned consistent state only. st.cal is
	// always set here — phase 3 (the only place boundaries occur) requires
	// calibration.
	st.onCheckpoint(AppendDistCheckpoint(nil, st.cfg, st.vd, st.w.n, st.s.C, st.s.Tau, st.cal, st.epochs))
}

// AchievedEps returns the anytime guarantee currently held: 1 (vacuous)
// before calibration, the O(n) bound sweep of Calibration.AchievedEps
// afterwards.
func (st *EstimatorState) AchievedEps() float64 {
	if !st.calibrated || st.s.Tau <= 0 {
		return 1
	}
	return st.cal.AchievedEps(st.s.C, st.s.Tau)
}

// Estimates materializes btilde from the current state (all zeros before
// any sampling).
func (st *EstimatorState) Estimates() []float64 {
	bt := make([]float64, len(st.s.C))
	if st.s.Tau > 0 {
		ft := float64(st.s.Tau)
		for v, c := range st.s.C {
			bt[v] = float64(c) / ft
		}
	}
	return bt
}

// Progress returns a consistent progress observation of the current state.
// It pays the O(n) achieved-eps sweep.
func (st *EstimatorState) Progress() Progress {
	p := Progress{Epoch: st.epochs, Tau: st.s.Tau, AchievedEps: st.AchievedEps()}
	// The throughput covers what this process actually sampled: a restored
	// session's inherited tau does not count against its fresh clock.
	if el := st.activeClock(); el > 0 && st.s.Tau > st.clockTau {
		p.SamplesPerSec = float64(st.s.Tau-st.clockTau) / el.Seconds()
	}
	return p
}

func (st *EstimatorState) activeClock() time.Duration {
	d := st.clock
	if !st.activeSince.IsZero() {
		d += time.Since(st.activeSince)
	}
	return d
}

func (st *EstimatorState) fireProgress() {
	if st.cfg.OnEpoch != nil {
		st.cfg.OnEpoch(st.Progress())
	}
}

// Result materializes the unified result from the current state.
func (st *EstimatorState) Result() *Result {
	return &Result{
		Betweenness:    st.Estimates(),
		Tau:            st.s.Tau,
		Omega:          st.omega,
		VertexDiameter: st.vd,
		Epochs:         st.epochs,
		AchievedEps:    st.AchievedEps(),
		Converged:      st.converged,
		Timings:        st.timings,
	}
}

// Recalibrate retargets the session to a new (eps, delta) while keeping
// every accumulated sample: omega is recomputed from the cached vertex
// diameter and the per-vertex failure budgets are re-derived from the
// *current* counts — never reset — so refinement resumes from the tightest
// available state (the calibration heuristic affects only running time,
// never correctness: paper footnote 2). Call only between Runs; eps and
// delta must be in (0, 1).
func (st *EstimatorState) Recalibrate(eps, delta float64) {
	st.cfg.Eps, st.cfg.Delta = eps, delta
	st.omega = Omega(st.vd, eps, delta)
	st.converged = false
	if st.s.Tau > 0 {
		st.cal = Calibrate(st.s.C, st.s.Tau, st.omega, eps, delta)
		st.calibrated = true
		st.nextCheck = st.s.Tau
	}
}

// Run advances the session until the adaptive stopping rule is satisfied
// for the current targets, the budget runs out, or ctx is cancelled. Every
// return leaves the state quiescent and consistent: on a budget stop Run
// returns nil with Converged() false, on cancellation it returns ctx.Err()
// with all completed work retained, so the caller may checkpoint, refine,
// or resume in all three cases. Calling Run after convergence returns
// immediately.
func (st *EstimatorState) Run(ctx context.Context, b Budget) error {
	if st.converged {
		return nil
	}
	st.activeSince = time.Now()
	defer func() {
		st.clock += time.Since(st.activeSince)
		st.activeSince = time.Time{}
	}()
	if st.threads == 0 {
		return st.runSeq(ctx, b)
	}
	return st.runShm(ctx, b)
}

// runSeq is the sequential engine: the plain KADABRA loop restructured
// around an absolute stopping-check schedule (checks fire at tau0 and then
// every CheckInterval samples, capped at omega) so that a budget stop at
// any tau resumes on exactly the schedule an uninterrupted run would have
// followed — the foundation of the bit-identical checkpoint guarantee.
func (st *EstimatorState) runSeq(ctx context.Context, b Budget) error {
	cfg := st.cfg
	sampler := st.samplers[0]
	S := st.s

	// Phase 2: calibration with tau0 = omega/StartFactor non-adaptive
	// samples, kept in the running state (paper §III-A).
	if !st.calibrated {
		calStart := time.Now()
		tau0 := int64(st.omega)/int64(cfg.StartFactor) + 1
		target := tau0
		if b.MaxSamples > 0 && b.MaxSamples < target {
			target = b.MaxSamples
		}
		for S.Tau < target {
			if S.Tau%calCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					st.timings.Calibration += time.Since(calStart)
					return err
				}
				if b.Overdue() {
					break
				}
			}
			SampleInto(sampler, S)
		}
		if S.Tau >= tau0 {
			st.cal = Calibrate(S.C, S.Tau, st.omega, cfg.Eps, cfg.Delta)
			st.calibrated = true
			st.nextCheck = S.Tau // first adaptive check fires immediately
		}
		st.timings.Calibration += time.Since(calStart)
		if !st.calibrated {
			return nil // budget exhausted mid-calibration; resumable
		}
	}

	// Phase 3: adaptive sampling on the absolute check schedule.
	samplingStart := time.Now()
	defer func() { st.timings.Sampling += time.Since(samplingStart) }()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if S.Tau >= st.nextCheck || float64(S.Tau) >= st.omega {
			cs := time.Now()
			stop := st.cal.HaveToStop(S.C, S.Tau)
			st.timings.Check += time.Since(cs)
			st.epochs++
			st.fireProgress()
			st.nextCheck = S.Tau + int64(cfg.CheckInterval)
			st.serviceCheckpoint()
			if stop {
				st.converged = true
				return nil
			}
		}
		if b.Exceeded(S.Tau) {
			return nil
		}
		target := st.nextCheck
		if b.MaxSamples > 0 && b.MaxSamples < target {
			target = b.MaxSamples
		}
		for S.Tau < target && float64(S.Tau) < st.omega {
			SampleInto(sampler, S)
			if S.Tau%calCheckEvery == 0 && b.Overdue() {
				break
			}
		}
	}
}

// runShm is the epoch-based shared-memory engine (paper Ref. 24, Alg. 2
// with the MPI calls removed): thread 0 coordinates — samples, forces epoch
// transitions, aggregates frozen frames, checks the stopping condition —
// while threads 1..T-1 sample wait-free. Each Run spawns its workers and
// joins them before returning, so between Runs the session is quiescent;
// samples left in unaggregated frames at a stop are discarded, which is
// statistically neutral (they are dropped independently of their values).
func (st *EstimatorState) runShm(ctx context.Context, b Budget) error {
	cfg := st.cfg
	n := st.w.n
	T := st.threads
	S := st.s

	// Phase 2: pleasingly parallel calibration toward tau0.
	if !st.calibrated {
		calStart := time.Now()
		tau0 := int64(st.omega)/int64(cfg.StartFactor) + 1
		target := tau0
		if b.MaxSamples > 0 && b.MaxSamples < target {
			target = b.MaxSamples
		}
		if remaining := target - S.Tau; remaining > 0 {
			partial := make([]*epoch.StateFrame, T)
			var wg sync.WaitGroup
			per := int(remaining)/T + 1
			for t := 0; t < T; t++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					local := newStateFrame(n, cfg)
					for i := 0; i < per; i++ {
						if i%256 == 0 && (ctx.Err() != nil || b.Overdue()) {
							break
						}
						SampleInto(st.samplers[t], local)
					}
					partial[t] = local
				}(t)
			}
			wg.Wait()
			for t := 0; t < T; t++ {
				S.Add(partial[t])
			}
		}
		if err := ctx.Err(); err != nil {
			st.timings.Calibration += time.Since(calStart)
			return err
		}
		if S.Tau >= tau0 {
			st.cal = Calibrate(S.C, S.Tau, st.omega, cfg.Eps, cfg.Delta)
			st.calibrated = true
		}
		st.timings.Calibration += time.Since(calStart)
		if !st.calibrated {
			return nil // budget exhausted mid-calibration; resumable
		}
	}

	// Phase 3: epoch-based adaptive sampling.
	samplingStart := time.Now()
	fw := epoch.New(T, n)
	if cfg.DenseFrames {
		fw.ForceDense()
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	for t := 1; t < T; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sf := fw.Frame(t)
			for !done.Load() {
				SampleInto(st.samplers[t], sf)
				if fw.CheckTransition(t) {
					sf = fw.Frame(t)
				}
			}
			for fw.CheckTransition(t) {
			}
		}(t)
	}

	n0 := cfg.EpochLength(T)
	var e uint64
	var transTime, checkTime time.Duration
	coord := st.samplers[0]
	var runErr error
	for {
		if err := ctx.Err(); err != nil {
			runErr = err
			break
		}
		// Stopping check on the consistent state: covers both the
		// calibration-alone-suffices degenerate case and the post-epoch
		// check of the previous iteration's aggregation.
		cs := time.Now()
		stop := st.cal.HaveToStop(S.C, S.Tau)
		checkTime += time.Since(cs)
		if stop {
			st.converged = true
			break
		}
		if b.Exceeded(S.Tau) {
			break
		}
		// The budget is re-checked per epoch, so a budget stop overshoots
		// by at most one epoch's samples; cap the coordinator's share by
		// the remaining allowance so small budgets stay small (worker
		// threads keep sampling until the transition either way — their
		// overshoot scales with the epoch's wall time).
		n0e := n0
		if b.MaxSamples > 0 {
			if rem := b.MaxSamples - S.Tau; rem < int64(n0e) {
				n0e = int(rem)
			}
		}
		sf := fw.Frame(0)
		for i := 0; i < n0e; i++ {
			SampleInto(coord, sf)
		}
		ts := time.Now()
		fw.ForceTransition()
		next := fw.Frame(0)
		for !fw.TransitionDone(e + 1) {
			SampleInto(coord, next)
		}
		transTime += time.Since(ts)
		fw.AggregateEpoch(e, S)
		st.epochs++
		st.fireProgress()
		st.serviceCheckpoint()
		e++
	}
	done.Store(true)
	wg.Wait()
	st.timings.Sampling += time.Since(samplingStart)
	st.timings.Transition += transTime
	st.timings.Check += checkTime
	return runErr
}

// --- checkpoint codec -------------------------------------------------------

// checkpointVersion is the payload format version; bump on layout change.
// RestoreEstimatorState rejects any other version, so a process running an
// older layout fails loudly instead of misreading state.
const checkpointVersion = 1

// Bounds on deserialized structural fields, keeping corrupt checkpoints
// from driving huge allocations or degenerate configurations.
const (
	maxCheckpointThreads = 1 << 14
	maxStartFactor       = 1 << 20
	maxCheckInterval     = 1 << 30
)

// AppendCheckpoint appends a versioned serialization of the session's
// resumable state — configuration, vertex diameter, per-vertex counts, RNG
// streams, calibration budgets, and the stopping schedule — to dst. The
// graph itself is NOT serialized; RestoreEstimatorState re-binds the state
// to a caller-supplied workload over the same graph. Call only between
// Runs (the state must be quiescent). Timings and the progress hook are
// not serialized: a restored session restarts its clocks and is given its
// hook via SetOnEpoch.
func (st *EstimatorState) AppendCheckpoint(dst []byte) []byte {
	cfg := st.cfg
	dst = binary.LittleEndian.AppendUint16(dst, checkpointVersion)
	engine := byte(engineSequential)
	if st.threads > 0 {
		engine = engineSharedMemory
	}
	dst = append(dst, engine)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(st.threads))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.Eps))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.Delta))
	dst = binary.LittleEndian.AppendUint64(dst, cfg.Seed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cfg.StartFactor))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cfg.CheckInterval))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.EpochBase))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.EpochSkew))
	var dense byte
	if cfg.DenseFrames {
		dense = 1
	}
	dst = append(dst, dense)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(st.vd))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(st.w.n))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.nextCheck))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(st.epochs))
	var calibrated, converged byte
	if st.calibrated {
		calibrated = 1
	}
	if st.converged {
		converged = 1
	}
	dst = append(dst, calibrated, converged)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.streams)))
	for _, r := range st.streams {
		s := r.State()
		for _, word := range s {
			dst = binary.LittleEndian.AppendUint64(dst, word)
		}
	}
	dst = epoch.AppendFrame(dst, st.s)
	if st.calibrated {
		for _, d := range st.cal.DeltaL {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d))
		}
		for _, d := range st.cal.DeltaU {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d))
		}
	}
	return dst
}

// AppendDistCheckpoint appends a checkpoint payload (same layout and
// version as EstimatorState.AppendCheckpoint) synthesized from the global
// state of a distributed run: the folded per-vertex counts, the total
// sample count tau, and the calibration budgets held at world rank 0. The
// payload restores onto a sequential-engine session via
// RestoreEstimatorState, so a job whose coordinator died can resume
// single-process (or be re-distributed by re-running calibration-free).
//
// Two fields cannot be carried over exactly and are re-synthesized:
// the RNG stream (a distributed run has one stream per rank; the restored
// session gets a fresh stream derived from cfg.Seed and tau, which is
// statistically equivalent — the guarantee never depends on which samples
// are drawn, only on how many) and the stopping schedule (nextCheck is set
// to tau, so the restored session re-checks convergence immediately).
func AppendDistCheckpoint(dst []byte, cfg Config, vd, n int, counts []int64, tau int64, cal *Calibration, epochs int) []byte {
	cfg = cfg.withDefaults()
	dst = binary.LittleEndian.AppendUint16(dst, checkpointVersion)
	dst = append(dst, byte(engineSequential))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // threads
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.Eps))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.Delta))
	dst = binary.LittleEndian.AppendUint64(dst, cfg.Seed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cfg.StartFactor))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cfg.CheckInterval))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.EpochBase))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(cfg.EpochSkew))
	var dense byte
	if cfg.DenseFrames {
		dense = 1
	}
	dst = append(dst, dense)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(vd))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tau)) // nextCheck
	dst = binary.LittleEndian.AppendUint32(dst, uint32(epochs))
	dst = append(dst, 1, 0) // calibrated, not converged
	dst = binary.LittleEndian.AppendUint32(dst, 1)
	stream := rng.NewRand(rng.NewSplitMix64(cfg.Seed ^ 0xD15C ^ uint64(tau)).Next())
	for _, word := range stream.State() {
		dst = binary.LittleEndian.AppendUint64(dst, word)
	}
	sf := epoch.NewStateFrame(n)
	if cfg.DenseFrames {
		sf.ForceDense()
	}
	for v, c := range counts {
		if c != 0 {
			sf.AddCount(uint32(v), c)
		}
	}
	sf.Tau = tau
	dst = epoch.AppendFrame(dst, sf)
	for _, d := range cal.DeltaL {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d))
	}
	for _, d := range cal.DeltaU {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d))
	}
	return dst
}

// ckptReader is a bounds-checked cursor over an untrusted checkpoint
// payload: every read past the end sets err and returns zero, so parsing
// code stays linear and the final err check catches truncation.
type ckptReader struct {
	b   []byte
	err error
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("kadabra: truncated checkpoint (wanted %d more bytes, have %d)", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *ckptReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ckptReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *ckptReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *ckptReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *ckptReader) f64() float64 { return math.Float64frombits(r.u64()) }

// unitInterval validates a deserialized probability-like field.
func unitInterval(name string, v float64) error {
	if math.IsNaN(v) || v <= 0 || v >= 1 {
		return fmt.Errorf("kadabra: checkpoint %s %g outside (0, 1)", name, v)
	}
	return nil
}

// RestoreEstimatorState reconstructs a session from an AppendCheckpoint
// payload, re-binding it to w, which must be a workload over the same graph
// the checkpoint was taken from (the vector length is verified; the caller
// vouches for the graph itself — a different graph of equal size yields
// estimates without a guarantee). The payload is untrusted: truncated,
// corrupted, or version-skewed bytes return an error, never panic.
func RestoreEstimatorState(payload []byte, w Workload) (*EstimatorState, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	r := &ckptReader{b: payload}
	if v := r.u16(); r.err == nil && v != checkpointVersion {
		return nil, fmt.Errorf("kadabra: unsupported checkpoint version %d (want %d)", v, checkpointVersion)
	}
	engine := r.u8()
	threads := int(r.u32())
	var cfg Config
	cfg.Eps = r.f64()
	cfg.Delta = r.f64()
	cfg.Seed = r.u64()
	cfg.StartFactor = int(r.u32())
	cfg.CheckInterval = int(r.u32())
	cfg.EpochBase = r.f64()
	cfg.EpochSkew = r.f64()
	cfg.DenseFrames = r.u8() != 0
	vd := int(r.u32())
	n := int(r.u32())
	nextCheck := int64(r.u64())
	epochs := int(r.u32())
	calibrated := r.u8() != 0
	converged := r.u8() != 0
	nstreams := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}

	switch engine {
	case engineSequential:
		if threads != 0 {
			return nil, fmt.Errorf("kadabra: sequential checkpoint with %d threads", threads)
		}
	case engineSharedMemory:
		if threads < 1 || threads > maxCheckpointThreads {
			return nil, fmt.Errorf("kadabra: checkpoint thread count %d out of range [1, %d]", threads, maxCheckpointThreads)
		}
	default:
		return nil, fmt.Errorf("kadabra: unknown checkpoint engine %d", engine)
	}
	if err := unitInterval("eps", cfg.Eps); err != nil {
		return nil, err
	}
	if err := unitInterval("delta", cfg.Delta); err != nil {
		return nil, err
	}
	if cfg.StartFactor < 1 || cfg.StartFactor > maxStartFactor {
		return nil, fmt.Errorf("kadabra: checkpoint start factor %d out of range", cfg.StartFactor)
	}
	if cfg.CheckInterval < 1 || cfg.CheckInterval > maxCheckInterval {
		return nil, fmt.Errorf("kadabra: checkpoint check interval %d out of range", cfg.CheckInterval)
	}
	if !(cfg.EpochBase > 0) || cfg.EpochBase > 1e12 {
		return nil, fmt.Errorf("kadabra: checkpoint epoch base %g out of range", cfg.EpochBase)
	}
	if math.IsNaN(cfg.EpochSkew) || cfg.EpochSkew < 0 || cfg.EpochSkew > 4 {
		return nil, fmt.Errorf("kadabra: checkpoint epoch skew %g out of range", cfg.EpochSkew)
	}
	if vd < 1 || vd > math.MaxInt32 {
		return nil, fmt.Errorf("kadabra: checkpoint vertex diameter %d out of range", vd)
	}
	if n != w.N() {
		return nil, fmt.Errorf("kadabra: checkpoint is over %d vertices, workload has %d", n, w.N())
	}
	if nextCheck < 0 {
		return nil, fmt.Errorf("kadabra: negative checkpoint check schedule %d", nextCheck)
	}
	wantStreams := threads
	if engine == engineSequential {
		wantStreams = 1
	}
	if nstreams != wantStreams {
		return nil, fmt.Errorf("kadabra: checkpoint has %d RNG streams, engine needs %d", nstreams, wantStreams)
	}

	streams := make([]*rng.Rand, nstreams)
	for i := range streams {
		var s [4]uint64
		for j := range s {
			s[j] = r.u64()
		}
		if r.err != nil {
			return nil, r.err
		}
		stream, err := rng.FromState(s)
		if err != nil {
			return nil, fmt.Errorf("kadabra: checkpoint stream %d: %w", i, err)
		}
		streams[i] = stream
	}

	frame, rest, err := epoch.ParseFrame(r.b, n, cfg.DenseFrames)
	if err != nil {
		return nil, err
	}
	r.b = rest

	st := &EstimatorState{
		w:          w,
		cfg:        cfg,
		threads:    threads,
		vd:         vd,
		omega:      Omega(vd, cfg.Eps, cfg.Delta),
		streams:    streams,
		s:          frame,
		calibrated: calibrated,
		nextCheck:  nextCheck,
		epochs:     epochs,
		converged:  converged,
		clockTau:   frame.Tau,
	}
	st.buildSamplers()

	if calibrated {
		cal := &Calibration{
			DeltaL: make([]float64, n),
			DeltaU: make([]float64, n),
			Omega:  st.omega,
			Eps:    cfg.Eps,
		}
		for v := 0; v < n; v++ {
			cal.DeltaL[v] = r.f64()
		}
		for v := 0; v < n; v++ {
			cal.DeltaU[v] = r.f64()
		}
		if r.err != nil {
			return nil, r.err
		}
		for v := 0; v < n; v++ {
			if err := unitInterval("deltaL", cal.DeltaL[v]); err != nil {
				return nil, err
			}
			if err := unitInterval("deltaU", cal.DeltaU[v]); err != nil {
				return nil, err
			}
		}
		// The sweep order and cached logs are derived, not serialized;
		// natural order only affects how fast a failing state is
		// recognized, never the stopping decision.
		cal.deriveCheckState(nil)
		st.cal = cal
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("kadabra: %d trailing bytes after checkpoint", len(r.b))
	}
	return st, nil
}
