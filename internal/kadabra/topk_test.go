package kadabra

import (
	"context"
	"testing"

	"repro/internal/brandes"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTopKHaveToStopBasics(t *testing.T) {
	counts := []int64{100, 50, 2, 1}
	cal := Calibrate(counts, 153, 1e6, 0.01, 0.1)
	lower := make([]float64, 4)
	upper := make([]float64, 4)
	// Far too few samples: no stop.
	if stop, _ := cal.TopKHaveToStop(counts, 153, 1, lower, upper); stop {
		t.Fatal("stopped with 153 samples")
	}
	// Bounds must bracket the empirical scores.
	for v, c := range counts {
		bt := float64(c) / 153
		if lower[v] > bt || upper[v] < bt {
			t.Fatalf("bounds do not bracket b~: [%f, %f] vs %f", lower[v], upper[v], bt)
		}
	}
	// Invalid k: never stop.
	if stop, _ := cal.TopKHaveToStop(counts, 153, 0, lower, upper); stop {
		t.Fatal("k=0 stopped")
	}
	if stop, _ := cal.TopKHaveToStop(counts, 153, 4, lower, upper); stop {
		t.Fatal("k=n stopped")
	}
	// tau >= omega: stop (fallback).
	calSmall := Calibrate(counts, 153, 200, 0.01, 0.1)
	if stop, sep := calSmall.TopKHaveToStop(counts, 201, 1, lower, upper); !stop || sep {
		t.Fatalf("omega fallback: stop=%v sep=%v", stop, sep)
	}
}

func TestTopKSeparationWithExtremeScores(t *testing.T) {
	// A vertex holding almost all the probability mass separates quickly.
	// (omega must be of realistic magnitude: the f/g bounds scale with
	// omega/tau, so a vacuously large omega keeps them loose.)
	counts := []int64{9000, 10, 5, 2}
	tau := int64(10000)
	cal := Calibrate(counts, tau, 2e4, 0.001, 0.1)
	lower := make([]float64, 4)
	upper := make([]float64, 4)
	stop, sep := cal.TopKHaveToStop(counts, tau, 1, lower, upper)
	if !stop || !sep {
		t.Fatalf("clear leader not separated: stop=%v sep=%v lower=%v upper=%v", stop, sep, lower, upper)
	}
}

func TestSequentialTopKStarGraph(t *testing.T) {
	// Star graph: the center is the unique top-1 vertex by a huge margin;
	// the top-k mode must find and certify it with very few samples.
	n := 101
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.Node(i))
	}
	g := b.Build()
	res, err := SequentialTopK(context.Background(), g, 1, Config{Eps: 0.01, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Top[0] != 0 {
		t.Fatalf("top-1 is %d, want 0 (center)", res.Top[0])
	}
	if !res.Separated {
		t.Fatal("star center not separated")
	}
	// The separation stop must come far before the uniform-eps stop.
	uniform, err := Sequential(context.Background(), g, Config{Eps: 0.01, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau >= uniform.Tau {
		t.Fatalf("top-k mode (%d samples) not cheaper than uniform mode (%d)", res.Tau, uniform.Tau)
	}
}

func TestSequentialTopKMatchesBrandes(t *testing.T) {
	g := gen.RMAT(gen.Graph500(8, 8, 31))
	g, _ = graph.LargestComponent(g)
	k := 5
	res, err := SequentialTopK(context.Background(), g, k, Config{Eps: 0.01, Delta: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	exact := brandes.TopK(brandes.Exact(g), k)
	// With separation, the exact top-1 must be in our certified top set
	// (ties within eps may permute lower ranks).
	found := false
	for _, v := range res.Top {
		if v == exact[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact top vertex %d missing from certified top-%d %v", exact[0], k, res.Top)
	}
	// Confidence bounds must bracket the exact scores (holds w.p. 0.9; the
	// run is deterministic via the seed, so this is a stable check).
	exactScores := brandes.Exact(g)
	for v := range exactScores {
		if exactScores[v] < res.Lower[v]-1e-9 || exactScores[v] > res.Upper[v]+1e-9 {
			t.Fatalf("vertex %d: exact %f outside [%f, %f]",
				v, exactScores[v], res.Lower[v], res.Upper[v])
		}
	}
}

func TestSequentialTopKValidation(t *testing.T) {
	g := gen.RMAT(gen.Graph500(6, 8, 1))
	g, _ = graph.LargestComponent(g)
	if _, err := SequentialTopK(context.Background(), g, 0, Config{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SequentialTopK(context.Background(), g, g.NumNodes(), Config{}); err == nil {
		t.Fatal("k=n accepted")
	}
	if _, err := SequentialTopK(context.Background(), graph.NewBuilder(1).Build(), 1, Config{}); err == nil {
		t.Fatal("tiny graph accepted")
	}
}
