package kadabra

import (
	"context"
	"testing"

	"repro/internal/epoch"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// The dense-vs-sparse battery: Config.DenseFrames reproduces the classic
// dense state-frame behavior, and with identical seeds the two paths must
// produce bit-identical results on every workload — the sparse
// representation is a pure data-structure change, never an algorithmic one.

// testWorkloads returns the three estimation scenarios over small fixed
// instances.
func testWorkloads(t testing.TB) map[string]Workload {
	t.Helper()
	g := gen.RMAT(gen.Graph500(8, 8, 5))
	g, _ = graph.LargestComponent(g)
	dg := stronglyConnectedDigraph(6, 120, 360)
	wg := connectedWeighted(7, 100, 200, 8)
	return map[string]Workload{
		"undirected": UndirectedWorkload(g),
		"directed":   DirectedWorkload(dg),
		"weighted":   WeightedWorkload(wg),
	}
}

func assertBitIdentical(t *testing.T, name string, sparse, dense *Result) {
	t.Helper()
	if sparse.Tau != dense.Tau {
		t.Fatalf("%s: tau sparse %d dense %d", name, sparse.Tau, dense.Tau)
	}
	if sparse.Epochs != dense.Epochs {
		t.Fatalf("%s: epochs sparse %d dense %d", name, sparse.Epochs, dense.Epochs)
	}
	for v := range sparse.Betweenness {
		if sparse.Betweenness[v] != dense.Betweenness[v] {
			t.Fatalf("%s: betweenness[%d] sparse %v dense %v",
				name, v, sparse.Betweenness[v], dense.Betweenness[v])
		}
	}
}

func TestDenseSparseEquivalenceSequential(t *testing.T) {
	for name, w := range testWorkloads(t) {
		cfg := Config{Eps: 0.05, Delta: 0.1, Seed: 11}
		sparse, err := SequentialWorkload(context.Background(), w, cfg)
		if err != nil {
			t.Fatalf("%s sparse: %v", name, err)
		}
		cfg.DenseFrames = true
		dense, err := SequentialWorkload(context.Background(), w, cfg)
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		assertBitIdentical(t, name, sparse, dense)
	}
}

// TestDenseSparseEquivalenceSharedMemory runs the epoch-based driver with a
// single thread, where the epoch trajectory is schedule-independent, so the
// dense and sparse paths must agree bit for bit (with more threads the
// per-epoch sample counts depend on scheduling, so runs are only
// statistically comparable — that regime is covered by the race test below
// and the parity batteries).
func TestDenseSparseEquivalenceSharedMemory(t *testing.T) {
	for name, w := range testWorkloads(t) {
		cfg := Config{Eps: 0.05, Delta: 0.1, Seed: 13}
		sparse, err := SharedMemoryWorkload(context.Background(), w, 1, cfg)
		if err != nil {
			t.Fatalf("%s sparse: %v", name, err)
		}
		cfg.DenseFrames = true
		dense, err := SharedMemoryWorkload(context.Background(), w, 1, cfg)
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		assertBitIdentical(t, name, sparse, dense)
	}
}

// TestSparseFramePingPongRace exercises the sparse frames' touched-list
// maintenance under real epoch transitions with concurrent sampling
// threads: a tiny epoch length forces rapid frame ping-pong while workers
// bump counts. Run with -race (the CI race job does) to check the frames'
// wait-free handoff; the assertions check the aggregated state stayed
// consistent.
func TestSparseFramePingPongRace(t *testing.T) {
	g := gen.RMAT(gen.Graph500(8, 8, 9))
	g, _ = graph.LargestComponent(g)
	cfg := Config{Eps: 0.08, Delta: 0.1, Seed: 17, EpochBase: 64}
	res, err := SharedMemory(context.Background(), g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau <= 0 || res.Epochs <= 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	for v, b := range res.Betweenness {
		if b < 0 || b > 1 {
			t.Fatalf("betweenness[%d] = %v out of range", v, b)
		}
	}
}

// TestSampleSteadyStateZeroAlloc asserts the per-sample hot path performs
// zero heap allocations in steady state on every workload, in both frame
// regimes a sampler sees: accumulating into a long-lived state (which cuts
// over to dense) and the epoch ping-pong (sparse frame filled then Reset).
func TestSampleSteadyStateZeroAlloc(t *testing.T) {
	for name, w := range testWorkloads(t) {
		sampler := w.NewSampler(rng.NewRand(23))
		n := w.N()

		// Regime 1: accumulated state frame.
		acc := epoch.NewStateFrame(n)
		for i := 0; i < 2000; i++ { // warm sampler buffers + pass the cutover
			SampleInto(sampler, acc)
		}
		if avg := testing.AllocsPerRun(200, func() {
			SampleInto(sampler, acc)
		}); avg != 0 {
			t.Errorf("%s: steady-state sample into accumulated frame allocates %.2f/op", name, avg)
		}

		// Regime 2: epoch frame filled and reset each "epoch".
		ef := epoch.NewStateFrame(n)
		for e := 0; e < 5; e++ { // grow the touched list to its working size
			for i := 0; i < 64; i++ {
				SampleInto(sampler, ef)
			}
			ef.Reset()
		}
		if avg := testing.AllocsPerRun(50, func() {
			for i := 0; i < 64; i++ {
				SampleInto(sampler, ef)
			}
			ef.Reset()
		}); avg != 0 {
			t.Errorf("%s: steady-state epoch fill+reset allocates %.2f/op", name, avg)
		}
	}
}

// haveToStopReference is the pre-optimization stopping check, kept verbatim
// as the semantic reference: natural vertex order, no cached logs, no
// failing-vertex memory.
func haveToStopReference(cal *Calibration, counts []int64, tau int64) bool {
	if tau <= 0 {
		return false
	}
	if float64(tau) >= cal.Omega {
		return true
	}
	ft := float64(tau)
	for v, c := range counts {
		bt := float64(c) / ft
		if FBound(bt, cal.DeltaL[v], cal.Omega, tau) >= cal.Eps {
			return false
		}
		if GBound(bt, cal.DeltaU[v], cal.Omega, tau) >= cal.Eps {
			return false
		}
	}
	return true
}

// TestHaveToStopMatchesReference drives the amortized check and the
// reference across a whole sampling trajectory (growing tau, evolving
// counts, crossing from failing to stopping) and demands identical
// decisions at every state. The amortized structure (ordering, early exit,
// cached logs, last-fail memory) must never change the boolean outcome —
// f/g are non-monotone, so this is the soundness property.
func TestHaveToStopMatchesReference(t *testing.T) {
	const n = 400
	r := rng.NewRand(29)
	// A synthetic calibration state with a skewed count distribution.
	counts := make([]int64, n)
	var tau0 int64 = 2000
	for i := int64(0); i < tau0; i++ {
		// Zipf-ish: low IDs get most mass, plus a heavy hub at a high ID so
		// the descending order differs sharply from the natural order.
		v := r.Intn(n)
		if r.Intn(3) > 0 {
			v = r.Intn(1 + n/10)
		}
		if r.Intn(4) == 0 {
			v = n - 3
		}
		counts[v]++
	}
	omega := Omega(12, 0.05, 0.1)
	cal := Calibrate(counts, tau0, omega, 0.05, 0.1)

	state := append([]int64(nil), counts...)
	tau := tau0
	agree := 0
	for step := 0; step < 200; step++ {
		got := cal.HaveToStop(state, tau)
		want := haveToStopReference(cal, state, tau)
		if got != want {
			t.Fatalf("step %d (tau=%d): amortized %v, reference %v", step, tau, got, want)
		}
		agree++
		// Advance the state like an epoch would.
		add := 50 + r.Intn(100)
		for i := 0; i < add; i++ {
			v := r.Intn(n)
			if r.Intn(3) > 0 {
				v = r.Intn(1 + n/10)
			}
			state[v]++
		}
		tau += int64(add)
	}
	if agree == 0 {
		t.Fatal("no states compared")
	}
	// The trajectory must actually reach the stopping state so the
	// full-sweep-true path is exercised.
	if !cal.HaveToStop(state, int64(cal.Omega)+1) {
		t.Fatal("omega fallback did not stop")
	}
}

// TestCalibrateDerivedState checks the cached logs and the sweep order
// Calibrate precomputes for the amortized check.
func TestCalibrateDerivedState(t *testing.T) {
	counts := []int64{5, 50, 0, 20, 50}
	cal := Calibrate(counts, 125, 10000, 0.05, 0.1)
	if len(cal.logDL) != len(counts) || len(cal.logDU) != len(counts) {
		t.Fatal("cached logs missing")
	}
	for v := range counts {
		if cal.logDL[v] <= 0 || cal.logDU[v] <= 0 {
			t.Fatalf("non-positive cached log at %d", v)
		}
	}
	// Descending calibration counts, ties by ascending ID: 50@1, 50@4,
	// 20@3, 5@0, 0@2.
	want := []uint32{1, 4, 3, 0, 2}
	for i, v := range cal.order {
		if v != want[i] {
			t.Fatalf("order %v, want %v", cal.order, want)
		}
	}
}

// BenchmarkHaveToStop measures the per-epoch stopping check on a
// 100k-vertex state in the steady (failing) regime — the call made once
// per epoch for the whole run — against the pre-optimization reference.
func BenchmarkHaveToStop(b *testing.B) {
	const n = 100_000
	r := rng.NewRand(31)
	counts := make([]int64, n)
	var tau0 int64
	for i := 0; i < 20_000; i++ {
		// Heavy mass on a high-ID hub so the natural-order reference pays
		// a long scan, as it does in expectation on real graphs.
		v := r.Intn(n)
		if r.Intn(2) == 0 {
			v = n - 7
		}
		counts[v]++
		tau0++
	}
	omega := Omega(20, 0.01, 0.1)
	cal := Calibrate(counts, tau0, omega, 0.01, 0.1)
	// A failing state below omega: the hub's f-bound still exceeds eps
	// while the low-count mass already passes, which is the steady regime
	// of a long run (one bottleneck vertex failing for many epochs).
	tau := tau0 + 10_000
	if float64(tau) >= omega {
		b.Fatalf("bench state crossed omega: tau=%d omega=%f", tau, omega)
	}

	b.Run("amortized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cal.HaveToStop(counts, tau) {
				b.Fatal("state unexpectedly stopped")
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if haveToStopReference(cal, counts, tau) {
				b.Fatal("state unexpectedly stopped")
			}
		}
	})
}
