package kadabra

import (
	"context"
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/graph"
	"repro/internal/rng"
)

func stronglyConnectedDigraph(seed uint64, n, extra int) *graph.Digraph {
	r := rng.NewRand(seed)
	arcs := make([][2]graph.Node, 0, n+extra)
	// Hamiltonian cycle guarantees strong connectivity.
	for i := 0; i < n; i++ {
		arcs = append(arcs, [2]graph.Node{graph.Node(i), graph.Node((i + 1) % n)})
	}
	for i := 0; i < extra; i++ {
		arcs = append(arcs, [2]graph.Node{graph.Node(r.Intn(n)), graph.Node(r.Intn(n))})
	}
	return graph.FromArcs(n, arcs)
}

func TestDirectedVertexDiameterIsUpperBound(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		n := 30 + int(seed)*7
		g := stronglyConnectedDigraph(seed, n, 3*n)
		bound := DirectedVertexDiameter(g)
		// Brute-force the true directed diameter.
		truth := 0
		for s := 0; s < n; s++ {
			dist := make([]int, n)
			for i := range dist {
				dist[i] = -1
			}
			dist[s] = 0
			queue := []graph.Node{graph.Node(s)}
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				for _, w := range g.Successors(v) {
					if dist[w] < 0 {
						dist[w] = dist[v] + 1
						queue = append(queue, w)
						if dist[w] > truth {
							truth = dist[w]
						}
					}
				}
			}
		}
		if bound < truth+1 {
			t.Fatalf("seed %d: bound %d below vertex diameter %d", seed, bound, truth+1)
		}
	}
}

func TestSequentialDirectedGuarantee(t *testing.T) {
	g := stronglyConnectedDigraph(3, 150, 900)
	eps := 0.03
	res, err := SequentialDirected(context.Background(), g, Config{Eps: eps, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact := brandes.ExactDirected(g)
	worst := 0.0
	for v := range exact {
		if d := math.Abs(exact[v] - res.Betweenness[v]); d > worst {
			worst = d
		}
	}
	if worst > eps {
		t.Fatalf("directed max error %f exceeds eps %f (tau=%d omega=%f)", worst, eps, res.Tau, res.Omega)
	}
}

func TestSequentialDirectedAsymmetry(t *testing.T) {
	// A graph where direction matters: a long one-way detour means the
	// "middle" vertex of the cycle carries directed betweenness that the
	// undirected view would distribute differently. Just verify scores are
	// sane and deterministic.
	g := stronglyConnectedDigraph(5, 80, 80)
	a, err := SequentialDirected(context.Background(), g, Config{Eps: 0.05, Delta: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SequentialDirected(context.Background(), g, Config{Eps: 0.05, Delta: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tau != b.Tau {
		t.Fatal("directed run not deterministic")
	}
	for _, s := range a.Betweenness {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score out of range: %f", s)
		}
	}
}

func TestSequentialDirectedRejectsTiny(t *testing.T) {
	if _, err := SequentialDirected(context.Background(), graph.FromArcs(1, nil), Config{}); err == nil {
		t.Fatal("tiny digraph accepted")
	}
}

func TestDirectedBrandesMatchesUndirectedOnSymmetricGraph(t *testing.T) {
	// A digraph with both arc directions for every edge must reproduce the
	// undirected betweenness exactly.
	r := rng.NewRand(11)
	n := 40
	var arcs [][2]graph.Node
	var edges [][2]graph.Node
	for i := 0; i < 120; i++ {
		u, v := graph.Node(r.Intn(n)), graph.Node(r.Intn(n))
		arcs = append(arcs, [2]graph.Node{u, v}, [2]graph.Node{v, u})
		edges = append(edges, [2]graph.Node{u, v})
	}
	dg := graph.FromArcs(n, arcs)
	ug := graph.FromEdges(n, edges)
	dScores := brandes.ExactDirected(dg)
	uScores := brandes.Exact(ug)
	for v := range dScores {
		if math.Abs(dScores[v]-uScores[v]) > 1e-9 {
			t.Fatalf("vertex %d: directed %f vs undirected %f", v, dScores[v], uScores[v])
		}
	}
}

func TestParallelDirectedMatchesSequential(t *testing.T) {
	g := stronglyConnectedDigraph(13, 200, 1200)
	seq := brandes.ExactDirected(g)
	par := brandes.ParallelDirected(g, 4)
	for v := range seq {
		if math.Abs(seq[v]-par[v]) > 1e-9 {
			t.Fatalf("vertex %d: %f vs %f", v, seq[v], par[v])
		}
	}
}
