package kadabra

import (
	"context"
	"math"
	"testing"
)

// TestAppendDistCheckpointRoundtrip exercises the rank-0 payload of the
// periodic distributed checkpoint: AppendDistCheckpoint builds a session
// checkpoint from raw global state (per-vertex counts, tau, calibration,
// epochs) rather than from a live EstimatorState, and the result must pass
// RestoreEstimatorState's full validation, reproduce the state field for
// field, and run on to the (eps, delta) guarantee on the sequential engine.
func TestAppendDistCheckpointRoundtrip(t *testing.T) {
	g := testGraph()
	for _, dense := range []bool{false, true} {
		name := "sparse"
		if dense {
			name = "dense"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{Eps: 0.03, Delta: 0.1, Seed: 17, DenseFrames: dense}
			w := UndirectedWorkload(g)

			full, err := NewEstimatorState(w, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := full.Run(context.Background(), Budget{}); err != nil {
				t.Fatal(err)
			}
			want := full.Result()
			if !want.Converged {
				t.Fatal("uninterrupted run did not converge")
			}

			// Drive a real session past calibration, then harvest its raw
			// state — the same quantities rank 0 holds between epochs.
			src, err := NewEstimatorState(w, 0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cut := want.Tau / 2
			if err := src.Run(context.Background(), Budget{MaxSamples: cut}); err != nil {
				t.Fatal(err)
			}
			if !src.Calibrated() || src.Converged() {
				t.Fatalf("budget %d did not pause mid-adaptive-phase (calibrated=%v converged=%v)",
					cut, src.Calibrated(), src.Converged())
			}
			counts := append([]int64(nil), src.s.C...)

			blob := AppendDistCheckpoint(nil, cfg, src.vd, w.n, counts, src.Tau(), src.cal, src.Epochs())
			restored, err := RestoreEstimatorState(blob, UndirectedWorkload(g))
			if err != nil {
				t.Fatalf("restore: %v", err)
			}

			if restored.Threads() != 0 {
				t.Errorf("restored threads %d, want 0 (sequential)", restored.Threads())
			}
			if restored.Tau() != src.Tau() {
				t.Errorf("restored tau %d, want %d", restored.Tau(), src.Tau())
			}
			if restored.Epochs() != src.Epochs() {
				t.Errorf("restored epochs %d, want %d", restored.Epochs(), src.Epochs())
			}
			if !restored.Calibrated() {
				t.Error("restored session not calibrated")
			}
			if restored.Converged() {
				t.Error("restored session already converged")
			}
			if restored.vd != src.vd || restored.omega != src.omega {
				t.Errorf("restored vd/omega %d/%f, want %d/%f", restored.vd, restored.omega, src.vd, src.omega)
			}
			for v := range counts {
				if restored.s.C[v] != counts[v] {
					t.Fatalf("restored count differs at vertex %d: %d vs %d", v, restored.s.C[v], counts[v])
				}
			}
			for i := range src.cal.DeltaL {
				if restored.cal.DeltaL[i] != src.cal.DeltaL[i] || restored.cal.DeltaU[i] != src.cal.DeltaU[i] {
					t.Fatalf("calibration tables differ at vertex %d", i)
				}
			}

			// The restored session carries a fresh RNG stream (statistically
			// equivalent, not the original), so resumption is not bit-exact;
			// it must still converge and agree with the uninterrupted run
			// within the two guarantees.
			if err := restored.Run(context.Background(), Budget{}); err != nil {
				t.Fatal(err)
			}
			res := restored.Result()
			if !res.Converged {
				t.Fatal("resumed session did not converge")
			}
			if res.AchievedEps > cfg.Eps {
				t.Errorf("resumed achieved eps %f, want <= %f", res.AchievedEps, cfg.Eps)
			}
			worst := 0.0
			for v := range want.Betweenness {
				if d := math.Abs(want.Betweenness[v] - res.Betweenness[v]); d > worst {
					worst = d
				}
			}
			if worst > 2*cfg.Eps {
				t.Errorf("resumed estimates diverge by %f, want <= %f", worst, 2*cfg.Eps)
			}
		})
	}
}
