package kadabra

import (
	"context"
	"math"
	"testing"

	"repro/internal/brandes"
	"repro/internal/graph"
	"repro/internal/rng"
)

func connectedWeighted(seed uint64, n, extra int, maxW uint32) *graph.WGraph {
	r := rng.NewRand(seed)
	edges := make([]graph.WeightedEdge, 0, n+extra)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.WeightedEdge{
			U: graph.Node(v), V: graph.Node(r.Intn(v)), W: uint32(r.Intn(int(maxW))) + 1,
		})
	}
	for i := 0; i < extra; i++ {
		edges = append(edges, graph.WeightedEdge{
			U: graph.Node(r.Intn(n)), V: graph.Node(r.Intn(n)), W: uint32(r.Intn(int(maxW))) + 1,
		})
	}
	g, err := graph.FromWeightedEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// naiveWeighted computes weighted betweenness by brute force over all pairs
// (Bellman-Ford distances + recursive path counting).
func naiveWeighted(g *graph.WGraph) []float64 {
	n := g.NumNodes()
	const inf = math.MaxUint64 / 2
	dist := make([][]uint64, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		d := make([]uint64, n)
		for i := range d {
			d[i] = inf
		}
		d[s] = 0
		for iter := 0; iter < n; iter++ {
			changed := false
			for v := 0; v < n; v++ {
				if d[v] >= inf {
					continue
				}
				adj, wts := g.Neighbors(graph.Node(v))
				for i, u := range adj {
					if nd := d[v] + uint64(wts[i]); nd < d[u] {
						d[u] = nd
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		sg := make([]float64, n)
		sg[s] = 1
		// Count in distance order.
		order := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if d[v] < inf {
				order = append(order, v)
			}
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && d[order[j]] < d[order[j-1]]; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for _, v := range order {
			adj, wts := g.Neighbors(graph.Node(v))
			for i, u := range adj {
				if d[v]+uint64(wts[i]) == d[u] {
					sg[u] += sg[v]
				}
			}
		}
		dist[s] = d
		sigma[s] = sg
	}
	scores := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || dist[s][t] >= inf {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == t {
					continue
				}
				if dist[s][v] < inf && dist[v][t] < inf &&
					dist[s][v]+dist[v][t] == dist[s][t] {
					scores[v] += sigma[s][v] * sigma[v][t] / sigma[s][t]
				}
			}
		}
	}
	if n >= 2 {
		inv := 1 / (float64(n) * float64(n-1))
		for i := range scores {
			scores[i] *= inv
		}
	}
	return scores
}

func TestWeightedBrandesMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		n := 10 + int(seed)*2
		g := connectedWeighted(seed, n, 2*n, 5)
		got := brandes.ExactWeighted(g)
		want := naiveWeighted(g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("seed %d vertex %d: %f vs %f", seed, v, got[v], want[v])
			}
		}
	}
}

func TestWeightedBrandesReducesToUnweighted(t *testing.T) {
	// All weights 1: weighted Brandes must equal unweighted Brandes.
	g := connectedWeighted(7, 60, 120, 1)
	w := brandes.ExactWeighted(g)
	u := brandes.Exact(g.Unweighted())
	for v := range w {
		if math.Abs(w[v]-u[v]) > 1e-9 {
			t.Fatalf("vertex %d: weighted %f vs unweighted %f", v, w[v], u[v])
		}
	}
}

func TestParallelWeightedMatchesSequential(t *testing.T) {
	g := connectedWeighted(9, 150, 600, 10)
	seq := brandes.ExactWeighted(g)
	par := brandes.ParallelWeighted(g, 4)
	for v := range seq {
		if math.Abs(seq[v]-par[v]) > 1e-9 {
			t.Fatalf("vertex %d: %f vs %f", v, seq[v], par[v])
		}
	}
}

func TestSequentialWeightedGuarantee(t *testing.T) {
	g := connectedWeighted(11, 120, 500, 8)
	eps := 0.03
	res, err := SequentialWeighted(context.Background(), g, Config{Eps: eps, Delta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exact := brandes.ExactWeighted(g)
	worst := 0.0
	for v := range exact {
		if d := math.Abs(exact[v] - res.Betweenness[v]); d > worst {
			worst = d
		}
	}
	if worst > eps {
		t.Fatalf("weighted max error %f exceeds eps %f (tau=%d omega=%f vd=%d)",
			worst, eps, res.Tau, res.Omega, res.VertexDiameter)
	}
}

func TestWeightedVertexDiameterSane(t *testing.T) {
	g := connectedWeighted(13, 100, 300, 6)
	vd := WeightedVertexDiameter(g, 1)
	if vd < 2 || vd > g.NumNodes() {
		t.Fatalf("vd = %d out of [2, %d]", vd, g.NumNodes())
	}
}

func TestSequentialWeightedRejectsTiny(t *testing.T) {
	g, err := graph.FromWeightedEdges(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SequentialWeighted(context.Background(), g, Config{}); err == nil {
		t.Fatal("tiny weighted graph accepted")
	}
}
